package metrics

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count: bucket 0 holds observations
// <= 0, bucket i (1..64) holds observations in [2^(i-1), 2^i - 1]. The
// bound makes every histogram O(1) memory regardless of the value range,
// which is what lets per-run and per-window observations stay on the hot
// path.
const histBuckets = 65

// Histogram is a bounded histogram with power-of-two buckets. Observe is
// one atomic add per bucket plus count/sum upkeep; all methods are
// no-ops / zeros on a nil receiver.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpper returns the inclusive upper bound of bucket i; the last
// bucket reports MaxInt64 rather than overflowing.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<uint(i) - 1
}

// Observe records v (no-op on a nil receiver). Negative observations
// count in the zero bucket but do not perturb the sum, so Mean stays a
// mean of the modeled (non-negative) quantities.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of positive observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// snapshot captures the histogram's non-empty buckets.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: BucketUpper(i), Count: n})
		}
	}
	return s
}
