// Package sched models the oblivious adversary of Section 1.1: a schedule
// is a sequence of process ids fixed in advance, independent of the coin
// flips made by the processes. A Source produces that sequence; every
// Source here is a deterministic function of its own seed and never
// observes protocol state, which makes the resulting adversary oblivious
// by construction.
//
// The package also provides finite explicit schedules and an interleaving
// enumerator used to model-check small shared objects over every possible
// schedule.
package sched

import (
	"fmt"
	"math"

	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// Exhausted is returned by Source.Next when a finite schedule has no more
// slots. Infinite sources never return it.
const Exhausted = -1

// Source yields the adversary's schedule, one process id per step slot.
type Source interface {
	// N returns the number of processes the schedule covers.
	N() int
	// Next returns the id of the process scheduled for the next slot, or
	// Exhausted for finite schedules that have ended.
	Next() int
}

// CrashAware is implemented by sources that permanently stop scheduling
// some processes; the runner uses it to decide when an execution is
// complete even though crashed processes will never finish.
type CrashAware interface {
	// Alive reports whether the source may still schedule pid.
	Alive(pid int) bool
}

// Skipper is implemented by sources that can consume a run of consecutive
// slots in one call. The simulator uses it to fast-forward over slots
// allocated to finished or crashed processes (uncharged no-ops in the
// paper's model) without paying one driver-loop iteration per slot.
type Skipper interface {
	// SkipWhile consumes upcoming slots as long as pred accepts their pid
	// and returns how many slots were consumed. The first slot whose pid
	// pred rejects (or the end of a finite schedule) is not consumed: the
	// next call to Next returns it. The consumed slots are exactly the
	// ones Next would have produced, so interleaving SkipWhile with Next
	// never changes the schedule.
	//
	// If pred accepts every pid a source can still emit, a call may not
	// return (random sources draw until a rejection) or may stop after one
	// full cycle (RoundRobin); callers must guarantee at least one
	// still-schedulable pid is rejected.
	SkipWhile(pred func(pid int) bool) int64
}

// skipBuf buffers one already-drawn slot. Stateful (random) sources
// cannot peek at the next slot without consuming RNG state, so their
// SkipWhile draws until it hits a rejected pid, stashes that pid here,
// and Next hands it back before drawing anything new.
type skipBuf struct {
	pid int
	ok  bool
}

func (b *skipBuf) take() (int, bool) {
	if !b.ok {
		return 0, false
	}
	b.ok = false
	return b.pid, true
}

func (b *skipBuf) put(pid int) { b.pid, b.ok = pid, true }

// skipWhile implements Skipper for sources that cannot peek: it draws via
// Next, counting accepted slots, and stashes the first rejected pid (or
// Exhausted) in buf for the next Next call.
func skipWhile(src Source, buf *skipBuf, pred func(pid int) bool) int64 {
	var skipped int64
	for {
		pid := src.Next()
		if pid == Exhausted || !pred(pid) {
			buf.put(pid)
			return skipped
		}
		skipped++
	}
}

// Kind names a built-in schedule family for experiment sweeps.
type Kind int

const (
	// KindRoundRobin schedules 0, 1, ..., n-1, 0, 1, ...
	KindRoundRobin Kind = iota + 1
	// KindRandom schedules a uniformly random process each slot.
	KindRandom
	// KindStaggered runs each process for a block of consecutive slots
	// before moving on, in a seeded random process order per sweep.
	KindStaggered
	// KindSplit alternates long phases between the two halves of the
	// processes, so the halves rarely observe each other mid-phase.
	KindSplit
	// KindZipf schedules processes with Zipf-skewed frequencies, starving
	// high-rank processes.
	KindZipf
	// KindCrashHalf behaves like KindRandom but permanently crashes half
	// of the processes partway through the execution.
	KindCrashHalf
)

// Kinds lists every built-in schedule family, for sweeps.
func Kinds() []Kind {
	return []Kind{KindRoundRobin, KindRandom, KindStaggered, KindSplit, KindZipf, KindCrashHalf}
}

// String returns the family name.
func (k Kind) String() string {
	switch k {
	case KindRoundRobin:
		return "round-robin"
	case KindRandom:
		return "random"
	case KindStaggered:
		return "staggered"
	case KindSplit:
		return "split"
	case KindZipf:
		return "zipf"
	case KindCrashHalf:
		return "crash-half"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindByName parses a Kind from its String form, for flag values and
// replay artifacts.
func KindByName(name string) (Kind, bool) {
	for _, k := range Kinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// New builds a Source of the given family for n processes, deterministic
// in seed. The adversary seed must be independent of the algorithm seed to
// model an oblivious adversary; keeping the two in separate xrand streams
// is the caller's responsibility (the simulator's Config does this).
func New(kind Kind, n int, seed uint64) Source {
	rng := xrand.New(seed)
	switch kind {
	case KindRoundRobin:
		return NewRoundRobin(n)
	case KindRandom:
		return NewRandom(n, rng)
	case KindStaggered:
		return NewStaggered(n, 8, rng)
	case KindSplit:
		return NewSplit(n, 4*n)
	case KindZipf:
		return NewZipf(n, 1.2, rng)
	case KindCrashHalf:
		return NewCrashHalf(n, rng)
	default:
		panic(fmt.Sprintf("sched: unknown kind %d", kind))
	}
}

// Compile-time checks that every built-in source supports bulk skipping.
var (
	_ Skipper = (*RoundRobin)(nil)
	_ Skipper = (*Random)(nil)
	_ Skipper = (*Staggered)(nil)
	_ Skipper = (*Split)(nil)
	_ Skipper = (*Zipf)(nil)
	_ Skipper = (*CrashHalf)(nil)
	_ Skipper = (*CrashSet)(nil)
	_ Skipper = (*Favored)(nil)
	_ Skipper = (*Explicit)(nil)
)

// RoundRobin cycles through all processes in id order.
type RoundRobin struct {
	n, i int
}

// NewRoundRobin returns a round-robin source over n processes.
func NewRoundRobin(n int) *RoundRobin {
	mustPositive(n)
	return &RoundRobin{n: n}
}

// N implements Source.
func (s *RoundRobin) N() int { return s.n }

// Next implements Source.
func (s *RoundRobin) Next() int {
	id := s.i
	s.i = (s.i + 1) % s.n
	return id
}

// SkipWhile implements Skipper by peeking at the cycle directly. It stops
// after one full cycle even when pred accepts everything, so a caller
// violating the Skipper contract still makes (countable) progress.
func (s *RoundRobin) SkipWhile(pred func(pid int) bool) int64 {
	var skipped int64
	for skipped < int64(s.n) && pred(s.i) {
		s.i = (s.i + 1) % s.n
		skipped++
	}
	return skipped
}

// Random schedules a uniform process each slot.
type Random struct {
	n   int
	rng *xrand.Rand
	buf skipBuf
}

// NewRandom returns a uniform random source over n processes.
func NewRandom(n int, rng *xrand.Rand) *Random {
	mustPositive(n)
	return &Random{n: n, rng: rng}
}

// N implements Source.
func (s *Random) N() int { return s.n }

// Next implements Source.
func (s *Random) Next() int {
	if pid, ok := s.buf.take(); ok {
		return pid
	}
	return s.rng.Intn(s.n)
}

// SkipWhile implements Skipper.
func (s *Random) SkipWhile(pred func(pid int) bool) int64 { return skipWhile(s, &s.buf, pred) }

// Staggered runs each process for block consecutive slots, visiting
// processes in a fresh random order each sweep. This is the classic
// adversary against protocols that rely on processes seeing each other's
// recent writes.
type Staggered struct {
	n, block int
	rng      *xrand.Rand
	order    []int
	pos, rem int
	buf      skipBuf
}

// NewStaggered returns a staggered source with the given block length.
func NewStaggered(n, block int, rng *xrand.Rand) *Staggered {
	mustPositive(n)
	if block < 1 {
		block = 1
	}
	return &Staggered{n: n, block: block, rng: rng}
}

// N implements Source.
func (s *Staggered) N() int { return s.n }

// SkipWhile implements Skipper.
func (s *Staggered) SkipWhile(pred func(pid int) bool) int64 { return skipWhile(s, &s.buf, pred) }

// Next implements Source.
func (s *Staggered) Next() int {
	if pid, ok := s.buf.take(); ok {
		return pid
	}
	if s.rem == 0 {
		if s.pos == 0 || s.pos >= s.n {
			s.order = s.rng.Perm(s.n)
			s.pos = 0
		}
		s.rem = s.block
		s.pos++
	}
	s.rem--
	return s.order[s.pos-1]
}

// Split alternates phases of length phaseLen between the low half and the
// high half of the process ids (round-robin within a half). Within a
// phase, a half runs as if the other half were suspended.
type Split struct {
	n, phaseLen int
	slot        int
	lo, hi      int
	buf         skipBuf
}

// NewSplit returns a split source; phases shorter than 1 are clamped.
func NewSplit(n, phaseLen int) *Split {
	mustPositive(n)
	if phaseLen < 1 {
		phaseLen = 1
	}
	return &Split{n: n, phaseLen: phaseLen}
}

// N implements Source.
func (s *Split) N() int { return s.n }

// SkipWhile implements Skipper.
func (s *Split) SkipWhile(pred func(pid int) bool) int64 { return skipWhile(s, &s.buf, pred) }

// Next implements Source.
func (s *Split) Next() int {
	if pid, ok := s.buf.take(); ok {
		return pid
	}
	half := s.n / 2
	if half == 0 {
		return 0
	}
	phase := (s.slot / s.phaseLen) % 2
	s.slot++
	if phase == 0 {
		id := s.lo % half
		s.lo++
		return id
	}
	id := half + s.hi%(s.n-half)
	s.hi++
	return id
}

// Zipf schedules process ranked r with probability proportional to
// 1/(r+1)^exponent, starving high ids.
type Zipf struct {
	n   int
	rng *xrand.Rand
	cdf []float64
	buf skipBuf
}

// NewZipf returns a Zipf-skewed source with the given exponent (> 0).
func NewZipf(n int, exponent float64, rng *xrand.Rand) *Zipf {
	mustPositive(n)
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), exponent)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{n: n, rng: rng, cdf: cdf}
}

// N implements Source.
func (s *Zipf) N() int { return s.n }

// SkipWhile implements Skipper.
func (s *Zipf) SkipWhile(pred func(pid int) bool) int64 { return skipWhile(s, &s.buf, pred) }

// Next implements Source.
func (s *Zipf) Next() int {
	if pid, ok := s.buf.take(); ok {
		return pid
	}
	u := s.rng.Float64()
	lo, hi := 0, s.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CrashHalf schedules uniformly at random, then crashes a random half of
// the processes after a seeded number of slots. Crashed processes are
// never scheduled again (the adversary simply stops allocating them
// steps, which in the wait-free model is indistinguishable from a crash).
type CrashHalf struct {
	n       int
	rng     *xrand.Rand
	cutoff  int
	slot    int
	crashed []bool
	live    []int
	buf     skipBuf
}

// NewCrashHalf returns a crash-half source; the crash set and crash time
// derive from rng.
func NewCrashHalf(n int, rng *xrand.Rand) *CrashHalf {
	mustPositive(n)
	s := &CrashHalf{
		n:       n,
		rng:     rng,
		cutoff:  n + rng.Intn(4*n+1),
		crashed: make([]bool, n),
	}
	perm := rng.Perm(n)
	for _, pid := range perm[:n/2] {
		s.crashed[pid] = true
	}
	for pid := 0; pid < n; pid++ {
		if !s.crashed[pid] {
			s.live = append(s.live, pid)
		}
	}
	return s
}

var _ CrashAware = (*CrashHalf)(nil)

// N implements Source.
func (s *CrashHalf) N() int { return s.n }

// Next implements Source.
func (s *CrashHalf) Next() int {
	if pid, ok := s.buf.take(); ok {
		return pid
	}
	s.slot++
	if s.slot <= s.cutoff {
		return s.rng.Intn(s.n)
	}
	return s.live[s.rng.Intn(len(s.live))]
}

// SkipWhile implements Skipper. A stashed slot has already advanced the
// crash clock, which matches the per-slot protocol: Alive answers for the
// state after the stashed slot was drawn.
func (s *CrashHalf) SkipWhile(pred func(pid int) bool) int64 { return skipWhile(s, &s.buf, pred) }

// Alive implements CrashAware. All processes are alive until the cutoff
// slot has been scheduled, so victims really do take steps (and leave
// partial writes behind) before crashing.
func (s *CrashHalf) Alive(pid int) bool { return s.slot <= s.cutoff || !s.crashed[pid] }

// Favored alternates between one favored process (every even slot) and a
// round-robin over everyone else. It is the cheap-to-complete skewed
// adversary: the favored process runs at n-1 times the rate of each
// other process, which exposes protocols whose per-process cost depends
// on being interleaved with others (the CIL spin loop), while every
// process still makes progress.
type Favored struct {
	n, slot, next int
	buf           skipBuf
}

// NewFavored returns a favored-process source (pid 0 is favored). For
// n = 1 it degenerates to round-robin.
func NewFavored(n int) *Favored {
	mustPositive(n)
	return &Favored{n: n, next: 1}
}

// N implements Source.
func (s *Favored) N() int { return s.n }

// SkipWhile implements Skipper.
func (s *Favored) SkipWhile(pred func(pid int) bool) int64 { return skipWhile(s, &s.buf, pred) }

// Next implements Source.
func (s *Favored) Next() int {
	if pid, ok := s.buf.take(); ok {
		return pid
	}
	s.slot++
	if s.n == 1 || s.slot%2 == 1 {
		return 0
	}
	id := s.next
	s.next++
	if s.next >= s.n {
		s.next = 1
	}
	return id
}

// CrashSet wraps a source and permanently crashes an explicit set of
// processes once the given number of slots has been consumed. Unlike
// CrashHalf, the victims and the cutoff are chosen by the caller, which
// is what exhaustive failure-injection tests need.
type CrashSet struct {
	inner   Source
	crashed map[int]bool
	cutoff  int
	slot    int
	live    []int
	rng     *xrand.Rand
	buf     skipBuf
}

// NewCrashSet returns a source that behaves like inner until cutoff slots
// have been issued and afterwards schedules only processes outside the
// victim set (uniformly at random from a stream derived from seed). At
// least one process must survive.
func NewCrashSet(inner Source, victims []int, cutoff int, seed uint64) *CrashSet {
	s := &CrashSet{
		inner:   inner,
		crashed: make(map[int]bool, len(victims)),
		cutoff:  cutoff,
		rng:     xrand.New(seed),
	}
	for _, v := range victims {
		s.crashed[v] = true
	}
	for pid := 0; pid < inner.N(); pid++ {
		if !s.crashed[pid] {
			s.live = append(s.live, pid)
		}
	}
	if len(s.live) == 0 {
		panic("sched: CrashSet must leave at least one process alive")
	}
	return s
}

var _ CrashAware = (*CrashSet)(nil)

// N implements Source.
func (s *CrashSet) N() int { return s.inner.N() }

// Next implements Source.
func (s *CrashSet) Next() int {
	if pid, ok := s.buf.take(); ok {
		return pid
	}
	s.slot++
	if s.slot <= s.cutoff {
		return s.inner.Next()
	}
	return s.live[s.rng.Intn(len(s.live))]
}

// SkipWhile implements Skipper.
func (s *CrashSet) SkipWhile(pred func(pid int) bool) int64 { return skipWhile(s, &s.buf, pred) }

// Alive implements CrashAware.
func (s *CrashSet) Alive(pid int) bool { return s.slot <= s.cutoff || !s.crashed[pid] }

// Explicit is a finite schedule, used by the model-checking tests to
// enumerate interleavings exactly.
type Explicit struct {
	n     int
	slots []int
	pos   int
}

// NewExplicit returns a finite schedule over n processes.
func NewExplicit(n int, slots []int) *Explicit {
	mustPositive(n)
	cp := make([]int, len(slots))
	copy(cp, slots)
	return &Explicit{n: n, slots: cp}
}

// N implements Source.
func (s *Explicit) N() int { return s.n }

// Next implements Source; returns Exhausted once the schedule ends.
func (s *Explicit) Next() int {
	if s.pos >= len(s.slots) {
		return Exhausted
	}
	id := s.slots[s.pos]
	s.pos++
	return id
}

// SkipWhile implements Skipper by peeking at the slot list directly; it
// stops (without consuming anything further) when the schedule ends.
func (s *Explicit) SkipWhile(pred func(pid int) bool) int64 {
	var skipped int64
	for s.pos < len(s.slots) && pred(s.slots[s.pos]) {
		s.pos++
		skipped++
	}
	return skipped
}

// Remaining returns how many slots are left.
func (s *Explicit) Remaining() int { return len(s.slots) - s.pos }

// AllInterleavings enumerates every interleaving of counts[i] steps for
// process i, as explicit slot sequences. The number of interleavings is
// the multinomial coefficient; callers are expected to keep counts small
// (model checking of 2-3 process objects).
func AllInterleavings(counts []int) [][]int {
	total := 0
	for _, c := range counts {
		if c < 0 {
			panic("sched: negative step count")
		}
		total += c
	}
	var (
		out  [][]int
		cur  = make([]int, 0, total)
		left = make([]int, len(counts))
	)
	copy(left, counts)
	var rec func()
	rec = func() {
		if len(cur) == total {
			cp := make([]int, total)
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		for pid := range left {
			if left[pid] == 0 {
				continue
			}
			left[pid]--
			cur = append(cur, pid)
			rec()
			cur = cur[:len(cur)-1]
			left[pid]++
		}
	}
	rec()
	return out
}

// CountInterleavings returns the number of interleavings AllInterleavings
// would produce, without materializing them.
func CountInterleavings(counts []int) int {
	total, result := 0, 1
	for _, c := range counts {
		for i := 1; i <= c; i++ {
			total++
			result = result * total / i
		}
	}
	return result
}

func mustPositive(n int) {
	if n <= 0 {
		panic("sched: number of processes must be positive")
	}
}
