package sched

import (
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestProgramValidation(t *testing.T) {
	bad := []struct {
		name string
		n    int
		spec ProgramSpec
	}{
		{"too many processes", 65, ProgramSpec{}},
		{"weight count mismatch", 4, ProgramSpec{Weights: []int64{1, 2}}},
		{"zero weight", 2, ProgramSpec{Weights: []int64{1, 0}}},
		{"negative weight", 2, ProgramSpec{Weights: []int64{1, -3}}},
		{"prefix pid out of range", 2, ProgramSpec{Prefix: []int{0, 2}}},
		{"prefix pid negative", 2, ProgramSpec{Prefix: []int{-1}}},
		{"segment zero length", 2, ProgramSpec{Segments: []ProgramSegment{{Mode: SegWeighted, Len: 0}}}},
		{"segment unknown mode", 2, ProgramSpec{Segments: []ProgramSegment{{Mode: SegmentMode(99), Len: 1}}}},
		{"burst pid out of range", 2, ProgramSpec{Segments: []ProgramSegment{{Mode: SegBurst, Len: 1, Pid: 2}}}},
		{"starve mask out of range", 2, ProgramSpec{Segments: []ProgramSegment{{Mode: SegStarve, Len: 1, Mask: 0b100}}}},
		{"starve mask total", 2, ProgramSpec{Segments: []ProgramSegment{{Mode: SegStarve, Len: 1, Mask: 0b11}}}},
		{"pid starved forever", 3, ProgramSpec{Segments: []ProgramSegment{
			{Mode: SegBurst, Len: 4, Pid: 0},
			{Mode: SegStarve, Len: 4, Mask: 0b110},
		}}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewProgram(tc.n, tc.spec, xrand.New(1)); err == nil {
				t.Fatalf("spec %+v accepted", tc.spec)
			}
		})
	}
}

func TestProgramSegments(t *testing.T) {
	const n = 4
	spec := ProgramSpec{
		Weights: []int64{8, 1, 1, 1},
		Prefix:  []int{3, 3, 0},
		Segments: []ProgramSegment{
			{Mode: SegRoundRobin, Len: n},
			{Mode: SegReverse, Len: n},
			{Mode: SegBurst, Len: 3, Pid: 2},
			{Mode: SegStarve, Len: 64, Mask: 0b0001}, // never pid 0
			{Mode: SegWeighted, Len: 64},
		},
	}
	p, err := NewProgram(n, spec, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int, 0, 3+2*n+3)
	for i := 0; i < 3+2*n+3; i++ {
		got = append(got, p.Next())
	}
	want := []int{3, 3, 0, 0, 1, 2, 3, 3, 2, 1, 0, 2, 2, 2}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("slot %d = %d, want %d (got %v)", i, got[i], w, got)
		}
	}
	// The starve segment must never schedule pid 0.
	for i := 0; i < 64; i++ {
		if pid := p.Next(); pid == 0 {
			t.Fatalf("starve segment scheduled the starved pid at slot %d", i)
		}
	}
	// The weighted segment eventually schedules pid 0 (weight 8 of 11).
	saw0 := false
	for i := 0; i < 64; i++ {
		if p.Next() == 0 {
			saw0 = true
		}
	}
	if !saw0 {
		t.Fatal("weighted segment never scheduled the heaviest pid")
	}
}

func TestProgramDeterministicAndCyclic(t *testing.T) {
	const n = 8
	spec := ProgramSpec{
		Weights: []int64{1, 2, 3, 4, 5, 6, 7, 8},
		Segments: []ProgramSegment{
			{Mode: SegWeighted, Len: 5},
			{Mode: SegReverse, Len: 3},
		},
	}
	run := func() []int {
		p, err := NewProgram(n, spec, xrand.New(99))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, 64)
		for i := range out {
			out[i] = p.Next()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d differs across identical programs: %d vs %d", i, a[i], b[i])
		}
	}
	// The reverse segment recurs every 8 slots with a persistent cursor:
	// occurrence k plays pids n-1-(3k+j) mod n, so across occurrences it
	// covers every pid even though each occurrence is shorter than n.
	desc := 0
	for start := 5; start+3 <= len(a); start += 8 {
		for j := 0; j < 3; j++ {
			if want := n - 1 - desc%n; a[start+j] != want {
				t.Fatalf("reverse slot %d = %d, want %d", start+j, a[start+j], want)
			}
			desc++
		}
	}
}

// TestProgramSkipWhileMatchesNext is the Skipper contract: interleaving
// SkipWhile with Next never changes the schedule.
func TestProgramSkipWhileMatchesNext(t *testing.T) {
	const n = 6
	spec := ProgramSpec{
		Weights: []int64{3, 1, 1, 1, 1, 2},
		Prefix:  []int{5, 4},
		Segments: []ProgramSegment{
			{Mode: SegWeighted, Len: 7},
			{Mode: SegRoundRobin, Len: 4},
			{Mode: SegStarve, Len: 9, Mask: 0b000011},
		},
	}
	plain, err := NewProgram(n, spec, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for i := 0; i < 200; i++ {
		want = append(want, plain.Next())
	}
	skippy, err := NewProgram(n, spec, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for len(got) < 200 {
		// Skip pids 1 and 2, recording them; then take two via Next.
		skipped := skippy.SkipWhile(func(pid int) bool { return pid == 1 || pid == 2 })
		_ = skipped
		got = append(got, skippy.Next())
		if len(got) < 200 {
			got = append(got, skippy.Next())
		}
	}
	// got is want with pids 1,2 removed in skip positions — instead of
	// reconstructing, drive both the same way: just compare full streams
	// drawn via interleaved SkipWhile(false-pred) + Next.
	fresh, err := NewProgram(n, spec, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var inter []int
	for i := 0; len(inter) < 200; i++ {
		if i%3 == 0 {
			fresh.SkipWhile(func(int) bool { return false }) // must consume nothing
		}
		inter = append(inter, fresh.Next())
	}
	for i := range want {
		if inter[i] != want[i] {
			t.Fatalf("slot %d: interleaved SkipWhile changed the schedule (%d vs %d)", i, inter[i], want[i])
		}
	}
}

func TestSeqConcatenatesAndSkips(t *testing.T) {
	const n = 3
	seq := NewSeq(
		NewExplicit(n, []int{0, 1, 2}),
		NewExplicit(n, []int{2, 2}),
		NewExplicit(n, []int{1, 0}),
	)
	if seq.N() != n {
		t.Fatalf("N = %d", seq.N())
	}
	var got []int
	for {
		pid := seq.Next()
		if pid == Exhausted {
			break
		}
		got = append(got, pid)
	}
	want := []int{0, 1, 2, 2, 2, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}

	// SkipWhile across a component boundary.
	seq2 := NewSeq(NewExplicit(n, []int{1, 1}), NewExplicit(n, []int{1, 0}))
	if skipped := seq2.SkipWhile(func(pid int) bool { return pid == 1 }); skipped != 3 {
		t.Fatalf("skipped %d slots across the boundary, want 3", skipped)
	}
	if pid := seq2.Next(); pid != 0 {
		t.Fatalf("slot after skip = %d, want 0", pid)
	}
	if pid := seq2.Next(); pid != Exhausted {
		t.Fatalf("expected exhaustion, got %d", pid)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty Seq did not panic")
			}
		}()
		NewSeq()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched Seq widths did not panic")
			}
		}()
		NewSeq(NewExplicit(2, nil), NewExplicit(3, nil))
	}()
}
