package sched

import (
	"math"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestRoundRobinCycle(t *testing.T) {
	s := NewRoundRobin(3)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("slot %d = %d, want %d", i, got, w)
		}
	}
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestRandomInRangeAndCoversAll(t *testing.T) {
	s := NewRandom(5, xrand.New(1))
	seen := make([]bool, 5)
	for i := 0; i < 1000; i++ {
		id := s.Next()
		if id < 0 || id >= 5 {
			t.Fatalf("id %d out of range", id)
		}
		seen[id] = true
	}
	for pid, ok := range seen {
		if !ok {
			t.Errorf("process %d never scheduled", pid)
		}
	}
}

func TestRandomDeterministicInSeed(t *testing.T) {
	a := NewRandom(7, xrand.New(99))
	b := NewRandom(7, xrand.New(99))
	for i := 0; i < 500; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("schedules diverged at slot %d", i)
		}
	}
}

func TestStaggeredBlocks(t *testing.T) {
	s := NewStaggered(4, 3, xrand.New(5))
	// Runs of one pid must come in whole blocks of 3 (adjacent sweeps may
	// chain two blocks of the same pid, hence "multiple of" rather than
	// "exactly").
	prev, run := -1, 0
	for i := 0; i < 120; i++ {
		id := s.Next()
		if id == prev {
			run++
		} else {
			if prev != -1 && run%3 != 0 {
				t.Fatalf("block of %d for pid %d, want a multiple of 3", run, prev)
			}
			prev, run = id, 1
		}
	}
}

func TestStaggeredSweepsCoverAll(t *testing.T) {
	const n = 6
	s := NewStaggered(n, 2, xrand.New(7))
	counts := make([]int, n)
	for i := 0; i < n*2*10; i++ {
		counts[s.Next()]++
	}
	for pid, c := range counts {
		if c != 20 {
			t.Errorf("pid %d scheduled %d times, want 20", pid, c)
		}
	}
}

func TestSplitPhases(t *testing.T) {
	s := NewSplit(4, 4)
	// First phase: only pids {0,1}; second: only {2,3}.
	for i := 0; i < 4; i++ {
		if id := s.Next(); id >= 2 {
			t.Fatalf("slot %d scheduled %d in low phase", i, id)
		}
	}
	for i := 4; i < 8; i++ {
		if id := s.Next(); id < 2 {
			t.Fatalf("slot %d scheduled %d in high phase", i, id)
		}
	}
}

func TestSplitSingleProcess(t *testing.T) {
	s := NewSplit(1, 3)
	for i := 0; i < 10; i++ {
		if id := s.Next(); id != 0 {
			t.Fatalf("got %d", id)
		}
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	const n = 16
	s := NewZipf(n, 1.2, xrand.New(3))
	counts := make([]int, n)
	const draws = 50000
	for i := 0; i < draws; i++ {
		id := s.Next()
		if id < 0 || id >= n {
			t.Fatalf("id %d out of range", id)
		}
		counts[id]++
	}
	if counts[0] <= counts[n-1] {
		t.Fatalf("no skew: counts[0]=%d counts[last]=%d", counts[0], counts[n-1])
	}
	// Rough shape check against the Zipf pmf for rank 0.
	expect0 := 0.0
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), 1.2)
	}
	expect0 = draws / total
	if math.Abs(float64(counts[0])-expect0) > 0.1*expect0 {
		t.Errorf("rank-0 count %d, want about %.0f", counts[0], expect0)
	}
}

func TestCrashHalfNeverSchedulesCrashedAfterCutoff(t *testing.T) {
	s := NewCrashHalf(8, xrand.New(11))
	// Drain well past any cutoff, then verify only alive pids appear.
	for i := 0; i < 8+4*8; i++ {
		s.Next()
	}
	for i := 0; i < 1000; i++ {
		id := s.Next()
		if !s.Alive(id) {
			t.Fatalf("crashed process %d scheduled after cutoff", id)
		}
	}
	alive := 0
	for pid := 0; pid < 8; pid++ {
		if s.Alive(pid) {
			alive++
		}
	}
	if alive != 4 {
		t.Fatalf("%d alive, want 4", alive)
	}
}

func TestExplicitExhaustion(t *testing.T) {
	s := NewExplicit(2, []int{0, 1, 1})
	if s.Remaining() != 3 {
		t.Fatalf("Remaining = %d", s.Remaining())
	}
	want := []int{0, 1, 1, Exhausted, Exhausted}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("slot %d = %d, want %d", i, got, w)
		}
	}
}

func TestExplicitCopiesInput(t *testing.T) {
	slots := []int{0, 1}
	s := NewExplicit(2, slots)
	slots[0] = 1
	if got := s.Next(); got != 0 {
		t.Fatalf("explicit schedule aliased caller slice: got %d", got)
	}
}

func TestNewKinds(t *testing.T) {
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			s := New(k, 8, 42)
			if s.N() != 8 {
				t.Fatalf("N = %d", s.N())
			}
			for i := 0; i < 100; i++ {
				if id := s.Next(); id < 0 || id >= 8 {
					t.Fatalf("id %d out of range", id)
				}
			}
		})
	}
}

func TestKindStringUnknown(t *testing.T) {
	if got := Kind(0).String(); got != "Kind(0)" {
		t.Fatalf("got %q", got)
	}
}

func TestAllInterleavingsCountsAndValidity(t *testing.T) {
	tests := []struct {
		counts []int
		want   int
	}{
		{counts: []int{1, 1}, want: 2},
		{counts: []int{2, 2}, want: 6},
		{counts: []int{3, 3}, want: 20},
		{counts: []int{2, 2, 2}, want: 90},
		{counts: []int{0, 2}, want: 1},
	}
	for _, tt := range tests {
		got := AllInterleavings(tt.counts)
		if len(got) != tt.want {
			t.Errorf("counts %v: %d interleavings, want %d", tt.counts, len(got), tt.want)
			continue
		}
		if cn := CountInterleavings(tt.counts); cn != tt.want {
			t.Errorf("CountInterleavings(%v) = %d, want %d", tt.counts, cn, tt.want)
		}
		seen := make(map[string]bool)
		for _, il := range got {
			per := make([]int, len(tt.counts))
			key := ""
			for _, pid := range il {
				per[pid]++
				key += string(rune('0' + pid))
			}
			for pid, c := range per {
				if c != tt.counts[pid] {
					t.Fatalf("interleaving %v has %d steps for %d, want %d", il, c, pid, tt.counts[pid])
				}
			}
			if seen[key] {
				t.Fatalf("duplicate interleaving %v", il)
			}
			seen[key] = true
		}
	}
}

func TestObliviousness(t *testing.T) {
	// The schedule must be a pure function of (kind, n, seed): regenerate
	// and compare long prefixes.
	for _, k := range Kinds() {
		a, b := New(k, 10, 7), New(k, 10, 7)
		for i := 0; i < 2000; i++ {
			if a.Next() != b.Next() {
				t.Fatalf("%v: schedule not deterministic in seed", k)
			}
		}
	}
}

func TestCrashSetBehavior(t *testing.T) {
	inner := NewRoundRobin(4)
	s := NewCrashSet(inner, []int{1, 3}, 6, 42)
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	// Before the cutoff: delegates to the inner source, everyone alive.
	for i := 0; i < 6; i++ {
		id := s.Next()
		if id != i%4 {
			t.Fatalf("slot %d = %d, want round-robin", i, id)
		}
		if !s.Alive(1) || !s.Alive(3) {
			t.Fatal("victims dead before cutoff")
		}
	}
	// After the cutoff: only survivors scheduled, victims dead.
	for i := 0; i < 200; i++ {
		id := s.Next()
		if id == 1 || id == 3 {
			t.Fatalf("victim %d scheduled after cutoff", id)
		}
	}
	if s.Alive(1) || s.Alive(3) {
		t.Fatal("victims alive after cutoff")
	}
	if !s.Alive(0) || !s.Alive(2) {
		t.Fatal("survivors reported dead")
	}
}

func TestCrashSetImmediateCutoff(t *testing.T) {
	s := NewCrashSet(NewRoundRobin(3), []int{0}, 0, 1)
	for i := 0; i < 50; i++ {
		if id := s.Next(); id == 0 {
			t.Fatal("victim scheduled with cutoff 0")
		}
	}
}

func TestCrashSetNoVictims(t *testing.T) {
	s := NewCrashSet(NewRoundRobin(2), nil, 5, 1)
	for pid := 0; pid < 2; pid++ {
		if !s.Alive(pid) {
			t.Fatal("no-victim crash set killed someone")
		}
	}
}

func TestFavoredSchedule(t *testing.T) {
	s := NewFavored(4)
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	want := []int{0, 1, 0, 2, 0, 3, 0, 1, 0, 2}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("slot %d = %d, want %d", i, got, w)
		}
	}
}

func TestFavoredSingleProcess(t *testing.T) {
	s := NewFavored(1)
	for i := 0; i < 10; i++ {
		if s.Next() != 0 {
			t.Fatal("single-process favored must schedule 0")
		}
	}
}

func TestFavoredSkewRatio(t *testing.T) {
	const n = 8
	s := NewFavored(n)
	counts := make([]int, n)
	for i := 0; i < 1400; i++ {
		counts[s.Next()]++
	}
	if counts[0] != 700 {
		t.Fatalf("favored process got %d of 1400 slots", counts[0])
	}
	for pid := 1; pid < n; pid++ {
		if counts[pid] != 100 {
			t.Fatalf("pid %d got %d slots, want 100", pid, counts[pid])
		}
	}
}

// skipperSources builds a named set of every Skipper-implementing source,
// paired with an identically-seeded twin, so tests can compare the slot
// stream of a SkipWhile/Next mix against a pure-Next reference.
func skipperSources() map[string]func() (Source, Source) {
	fresh := map[string]func() Source{
		"round-robin": func() Source { return NewRoundRobin(7) },
		"random":      func() Source { return NewRandom(7, xrand.New(11)) },
		"staggered":   func() Source { return NewStaggered(7, 3, xrand.New(12)) },
		"split":       func() Source { return NewSplit(8, 5) },
		"zipf":        func() Source { return NewZipf(7, 1.2, xrand.New(13)) },
		"crash-half":  func() Source { return NewCrashHalf(8, xrand.New(14)) },
		"crash-set": func() Source {
			return NewCrashSet(NewRoundRobin(6), []int{1, 4}, 9, 15)
		},
		"favored": func() Source { return NewFavored(6) },
		"explicit": func() Source {
			slots := make([]int, 400)
			rng := xrand.New(16)
			for i := range slots {
				slots[i] = rng.Intn(5)
			}
			return NewExplicit(5, slots)
		},
	}
	out := make(map[string]func() (Source, Source), len(fresh))
	for name, mk := range fresh {
		mk := mk
		out[name] = func() (Source, Source) { return mk(), mk() }
	}
	return out
}

func TestSkipWhileMatchesNext(t *testing.T) {
	// Interleaving SkipWhile with Next must yield exactly the slot stream
	// a pure-Next consumer sees, for every built-in source. The predicate
	// accepts a seeded pseudo-random subset of pids so both the skip and
	// the stash-then-redeliver paths are exercised.
	for name, mk := range skipperSources() {
		t.Run(name, func(t *testing.T) {
			mixed, ref := mk()
			skipper := mixed.(Skipper)
			drive := xrand.New(99)
			noop := func(pid int) bool { return pid%3 == 0 }
			var got []int
			for len(got) < 300 {
				if drive.Intn(2) == 0 {
					// Consume a run of accepted slots in bulk; they are
					// all no-op (accepted) slots by construction.
					skipped := skipper.SkipWhile(noop)
					for i := int64(0); i < skipped; i++ {
						got = append(got, -2) // placeholder, filled below
					}
					continue
				}
				pid := mixed.Next()
				got = append(got, pid)
				if pid == Exhausted {
					break
				}
			}
			for i, pid := range got {
				want := ref.Next()
				if pid == -2 {
					// A skipped slot: the reference stream must hold an
					// accepted pid here.
					if want == Exhausted || !noop(want) {
						t.Fatalf("slot %d: skipped, but reference produced %d", i, want)
					}
					continue
				}
				if pid != want {
					t.Fatalf("slot %d: mixed stream %d, reference %d", i, pid, want)
				}
				if pid == Exhausted {
					break
				}
			}
		})
	}
}

func TestSkipWhileStashesFirstRejected(t *testing.T) {
	// The first rejected slot must not be consumed: the next Next returns
	// it. Run against every source with a reject-everything predicate.
	for name, mk := range skipperSources() {
		t.Run(name, func(t *testing.T) {
			mixed, ref := mk()
			skipper := mixed.(Skipper)
			for i := 0; i < 50; i++ {
				if n := skipper.SkipWhile(func(int) bool { return false }); n != 0 {
					t.Fatalf("draw %d: reject-all SkipWhile consumed %d slots", i, n)
				}
				want := ref.Next()
				if got := mixed.Next(); got != want {
					t.Fatalf("draw %d: Next after SkipWhile = %d, want %d", i, got, want)
				}
			}
		})
	}
}

func TestRoundRobinSkipWhileCapsAtOneCycle(t *testing.T) {
	// An accept-everything predicate (a Skipper-contract violation) must
	// still terminate for RoundRobin, consuming exactly one full cycle.
	s := NewRoundRobin(5)
	s.Next() // misalign so the cap is not cycle-aligned
	if n := s.SkipWhile(func(int) bool { return true }); n != 5 {
		t.Fatalf("SkipWhile consumed %d slots, want one full cycle of 5", n)
	}
	if got := s.Next(); got != 1 {
		t.Fatalf("Next after full-cycle skip = %d, want 1", got)
	}
}

func TestExplicitSkipWhileRemaining(t *testing.T) {
	s := NewExplicit(3, []int{0, 0, 1, 0, 2})
	if n := s.SkipWhile(func(pid int) bool { return pid == 0 }); n != 2 {
		t.Fatalf("skipped %d, want 2", n)
	}
	if r := s.Remaining(); r != 3 {
		t.Fatalf("Remaining = %d, want 3", r)
	}
	if got := s.Next(); got != 1 {
		t.Fatalf("Next = %d, want 1", got)
	}
	// Skipping past the end stops at exhaustion without consuming more.
	if n := s.SkipWhile(func(int) bool { return true }); n != 2 {
		t.Fatalf("tail skip = %d, want 2", n)
	}
	if r := s.Remaining(); r != 0 {
		t.Fatalf("Remaining after tail skip = %d, want 0", r)
	}
	if got := s.Next(); got != Exhausted {
		t.Fatalf("Next after exhaustion = %d, want Exhausted", got)
	}
}
