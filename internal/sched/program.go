package sched

import (
	"fmt"

	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// SegmentMode selects how one Program segment schedules its slots.
type SegmentMode int

const (
	// SegWeighted draws each slot from the program's per-process weights.
	SegWeighted SegmentMode = iota + 1
	// SegRoundRobin cycles through process ids in ascending order.
	SegRoundRobin
	// SegReverse cycles through process ids in descending order — the
	// phase-reversal pattern that maximally disagrees with SegRoundRobin
	// about who has seen whose writes.
	SegReverse
	// SegBurst grants every slot of the segment to one process.
	SegBurst
	// SegStarve draws from the weights restricted to processes outside
	// the segment's starve mask.
	SegStarve
)

// String returns the mode name used in artifacts.
func (m SegmentMode) String() string {
	switch m {
	case SegWeighted:
		return "weighted"
	case SegRoundRobin:
		return "round-robin"
	case SegReverse:
		return "reverse"
	case SegBurst:
		return "burst"
	case SegStarve:
		return "starve"
	default:
		return fmt.Sprintf("SegmentMode(%d)", int(m))
	}
}

// SegmentModeByName parses a SegmentMode from its String form.
func SegmentModeByName(name string) (SegmentMode, bool) {
	for _, m := range []SegmentMode{SegWeighted, SegRoundRobin, SegReverse, SegBurst, SegStarve} {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

// ProgramSegment is one piece of a Program's cyclic schedule: Len slots
// produced in the given mode. Pid targets SegBurst; Mask is the SegStarve
// bitmask of processes the segment refuses to schedule (bit i = pid i).
type ProgramSegment struct {
	Mode SegmentMode
	Len  int
	Pid  int
	Mask uint64
}

// ProgramSpec parameterizes a Program. Weights are per-process scheduling
// weights (empty = uniform; every entry must be positive so each process
// keeps being scheduled); Prefix is an explicit slot sequence played once
// before the cyclic Segments program. With no segments the weighted draw
// runs forever.
type ProgramSpec struct {
	Weights  []int64
	Prefix   []int
	Segments []ProgramSegment
}

// Program is the parameterized oblivious schedule family the adversary
// search optimizes over: an explicit prefix, then a cyclic program of
// skew/burst/starvation/reversal segments driven by integer weights. Like
// every Source in this package it is a pure function of (spec, rng) and
// never observes protocol state, so any Program — including a searched
// worst case — is an oblivious adversary by construction.
type Program struct {
	n        int
	spec     ProgramSpec
	rng      *xrand.Rand
	cum      []int64   // full cumulative weights
	segCum   [][]int64 // per-segment cumulative weights (starve masks applied)
	total    int64
	segTotal []int64
	prefix   int // next prefix position
	seg      int // current segment index
	segRem   int // slots left in the current segment
	asc      int // ascending round-robin cursor
	desc     int // descending cursor
	buf      skipBuf
}

var (
	_ Source  = (*Program)(nil)
	_ Skipper = (*Program)(nil)
)

// NewProgram builds a Program over n processes. It validates the spec:
// weights must be empty or n positive entries; prefix pids must be in
// range; segments need positive lengths, in-range burst pids, and starve
// masks that leave at least one process schedulable; and when segments
// are present every process must be schedulable by at least one of them,
// so no process is starved forever (the run would never complete).
func NewProgram(n int, spec ProgramSpec, rng *xrand.Rand) (*Program, error) {
	mustPositive(n)
	if n > 64 {
		return nil, fmt.Errorf("sched: Program supports at most 64 processes (starve masks are 64-bit), got %d", n)
	}
	weights := spec.Weights
	if len(weights) == 0 {
		weights = make([]int64, n)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != n {
		return nil, fmt.Errorf("sched: Program has %d weights for %d processes", len(weights), n)
	}
	p := &Program{n: n, spec: spec, rng: rng, cum: make([]int64, n)}
	for i, w := range weights {
		if w < 1 {
			return nil, fmt.Errorf("sched: Program weight %d for pid %d must be positive", w, i)
		}
		p.total += w
		p.cum[i] = p.total
	}
	for i, pid := range spec.Prefix {
		if pid < 0 || pid >= n {
			return nil, fmt.Errorf("sched: Program prefix slot %d schedules pid %d outside [0, %d)", i, pid, n)
		}
	}
	full := uint64(1)<<uint(n) - 1
	covered := make([]bool, n)
	for i, seg := range spec.Segments {
		if seg.Len < 1 {
			return nil, fmt.Errorf("sched: Program segment %d has non-positive length %d", i, seg.Len)
		}
		switch seg.Mode {
		case SegWeighted, SegRoundRobin, SegReverse:
			for pid := range covered {
				covered[pid] = true
			}
		case SegBurst:
			if seg.Pid < 0 || seg.Pid >= n {
				return nil, fmt.Errorf("sched: Program segment %d bursts pid %d outside [0, %d)", i, seg.Pid, n)
			}
			covered[seg.Pid] = true
		case SegStarve:
			if seg.Mask&^full != 0 {
				return nil, fmt.Errorf("sched: Program segment %d starves pids outside [0, %d)", i, n)
			}
			if seg.Mask == full {
				return nil, fmt.Errorf("sched: Program segment %d starves every process", i)
			}
			for pid := 0; pid < n; pid++ {
				if seg.Mask&(1<<uint(pid)) == 0 {
					covered[pid] = true
				}
			}
		default:
			return nil, fmt.Errorf("sched: Program segment %d has unknown mode %d", i, int(seg.Mode))
		}
	}
	if len(spec.Segments) > 0 {
		for pid, ok := range covered {
			if !ok {
				return nil, fmt.Errorf("sched: Program never schedules pid %d after the prefix", pid)
			}
		}
	}
	// Precompute each starve segment's restricted cumulative weights, so
	// a draw is O(log n) with no rejection sampling.
	p.seg = len(spec.Segments) - 1 // the first advance wraps to segment 0
	p.segCum = make([][]int64, len(spec.Segments))
	p.segTotal = make([]int64, len(spec.Segments))
	for i, seg := range spec.Segments {
		if seg.Mode != SegStarve {
			continue
		}
		cum := make([]int64, n)
		var total int64
		for pid := 0; pid < n; pid++ {
			if seg.Mask&(1<<uint(pid)) == 0 {
				total += weights[pid]
			}
			cum[pid] = total
		}
		p.segCum[i], p.segTotal[i] = cum, total
	}
	return p, nil
}

// N implements Source.
func (p *Program) N() int { return p.n }

// SkipWhile implements Skipper.
func (p *Program) SkipWhile(pred func(pid int) bool) int64 { return skipWhile(p, &p.buf, pred) }

// Next implements Source. The program never ends: after the prefix the
// segment list cycles forever (or the weighted draw runs alone when the
// list is empty).
func (p *Program) Next() int {
	if pid, ok := p.buf.take(); ok {
		return pid
	}
	if p.prefix < len(p.spec.Prefix) {
		pid := p.spec.Prefix[p.prefix]
		p.prefix++
		return pid
	}
	if len(p.spec.Segments) == 0 {
		return p.drawWeighted(p.cum, p.total)
	}
	for p.segRem == 0 {
		p.seg = (p.seg + 1) % len(p.spec.Segments)
		p.segRem = p.spec.Segments[p.seg].Len
	}
	p.segRem--
	seg := p.spec.Segments[p.seg]
	switch seg.Mode {
	case SegRoundRobin:
		pid := p.asc
		p.asc = (p.asc + 1) % p.n
		return pid
	case SegReverse:
		pid := p.n - 1 - p.desc
		p.desc = (p.desc + 1) % p.n
		return pid
	case SegBurst:
		return seg.Pid
	case SegStarve:
		return p.drawWeighted(p.segCum[p.seg], p.segTotal[p.seg])
	default: // SegWeighted
		return p.drawWeighted(p.cum, p.total)
	}
}

// drawWeighted picks a pid with probability proportional to its weight,
// by binary search over the cumulative weights.
func (p *Program) drawWeighted(cum []int64, total int64) int {
	u := int64(p.rng.Uint64n(uint64(total)))
	lo, hi := 0, p.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Seq plays each source in turn, moving to the next when the current one
// is exhausted. It exists so a finite coin-aware prefix (internal/attack)
// can be grafted onto an infinite oblivious tail for apples-to-apples
// step comparisons; it is also how fuzzers compose explicit schedules.
// Seq is finite iff its last source is.
type Seq struct {
	n    int
	srcs []Source
	cur  int
	buf  skipBuf
}

var (
	_ Source  = (*Seq)(nil)
	_ Skipper = (*Seq)(nil)
)

// NewSeq concatenates the given sources; they must all cover the same
// number of processes, and at least one is required.
func NewSeq(srcs ...Source) *Seq {
	if len(srcs) == 0 {
		panic("sched: Seq needs at least one source")
	}
	n := srcs[0].N()
	for _, s := range srcs[1:] {
		if s.N() != n {
			panic("sched: Seq sources cover different process counts")
		}
	}
	return &Seq{n: n, srcs: srcs}
}

// N implements Source.
func (s *Seq) N() int { return s.n }

// Next implements Source.
func (s *Seq) Next() int {
	if pid, ok := s.buf.take(); ok {
		return pid
	}
	for s.cur < len(s.srcs) {
		pid := s.srcs[s.cur].Next()
		if pid != Exhausted {
			return pid
		}
		s.cur++
	}
	return Exhausted
}

// SkipWhile implements Skipper by drawing through Next and stashing the
// first rejected slot, like every buffered source here.
func (s *Seq) SkipWhile(pred func(pid int) bool) int64 { return skipWhile(s, &s.buf, pred) }
