package experiment

import (
	"fmt"

	"github.com/oblivious-consensus/conciliator/internal/consensus"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/stats"
)

// ihQCI renders an IntHist QuantileCI triple as "v [lo, hi]".
func ihQCI(h *stats.IntHist, q float64) string {
	v, lo, hi := h.QuantileCI(q)
	return fmt.Sprintf("%d [%d, %d]", v, lo, hi)
}

// e20MonteCarlo is the flat-engine Monte Carlo quantile experiment:
// million-trial step distributions of the full consensus protocols,
// aggregated through streaming integer histograms so the tail quantiles
// (p99, p999, max) carry order-statistic confidence intervals instead of
// the handful-of-trials noise the coroutine-engine experiments tolerate.
// Byte-identical identity of the flat engine with the coroutine engine
// is pinned separately (internal/consensus flat tests), so the volume
// here is pure statistical power.
func e20MonteCarlo() Experiment {
	type cell struct {
		conc string
		ac   string
	}
	cells := []cell{
		{consensus.ConcSifter, consensus.ACRegister},
		{consensus.ConcSifterHalf, consensus.ACRegister},
		{consensus.ConcPriorityMax, consensus.ACSnapshot},
	}
	return Experiment{
		ID:    "E20",
		Title: "Flat-engine Monte Carlo: consensus step quantiles at scale",
		Claim: "Corollaries 1-2: expected individual steps O(log log n + AC) (sifter) vs O(log n) (constant-p) vs O(log* n) (priority, unit-cost snapshots); tails concentrate",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			ns := p.ns([]int{8, 16}, []int{16, 64, 256})
			t := Table{
				ID:    "E20",
				Title: "per-process steps to decide, random oblivious schedule",
				Columns: []string{"n", "conciliator", "AC", "trials", "agree",
					"mean", "p50", "p90", "p99 [95% CI]", "p999 [95% CI]", "max", "phases p99", "phases max"},
				Notes: []string{
					"Quantiles are exact nearest-rank values over n_procs x trials individual step counts,",
					"aggregated by streaming integer histograms (stats.IntHist); [lo, hi] are distribution-free",
					"order-statistic ~95% CIs. Trials run on the flat state-machine engine (sim.RunFlat), whose",
					"byte-identity with the coroutine engine is enforced by the internal/consensus identity tests.",
				},
			}
			for _, n := range ns {
				// Per-trial cost grows with n; shrink the trial count so
				// every cell costs about the same wall-clock.
				trials := int64(p.trials(48, 1_000_000) * 16 / n)
				if trials < 1 {
					trials = 1
				}
				for ci, c := range cells {
					res, err := consensus.RunMonteCarlo(consensus.MCConfig{
						N:      n,
						Trials: trials,
						Flat:   consensus.FlatConfig{Conciliator: c.conc, AC: c.ac},
						Sched:  sched.KindRandom,
						Seed:   p.Seed + uint64(1000*n+ci),
						Workers: p.Parallelism,
					})
					if err != nil {
						panic(fmt.Sprintf("experiment: E20 Monte Carlo failed: %v", err))
					}
					agree, _ := stats.Proportion(int(res.Agreed), int(res.Trials))
					t.AddRow(n, c.conc, c.ac, trials, trimFloat(agree),
						trimFloat(res.Steps.Mean()),
						res.Steps.Quantile(0.5), res.Steps.Quantile(0.9),
						ihQCI(res.Steps, 0.99), ihQCI(res.Steps, 0.999),
						res.Steps.Max(),
						res.Phases.Quantile(0.99), res.Phases.Max())
				}
			}
			return []Table{t}
		},
	}
}
