package experiment

import (
	"fmt"
	"math"
	"sync"

	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/stats"
)

// sifterSurvivorMeans runs trials of Algorithm 2 with survivor tracking
// and returns mean excess personae per round.
func sifterSurvivorMeans(p Params, n, rounds, trials int, seedOff uint64, probs []float64) []float64 {
	sums := make([]float64, rounds)
	var mu sync.Mutex
	p.forEachTrial(p.Seed+seedOff, trials, func(t int, s trialSeeds) {
		c := conciliator.NewSifter[int](n, conciliator.SifterConfig{
			Rounds:         rounds,
			TrackSurvivors: true,
			Probs:          probs,
		})
		inputs := distinctInputs(n)
		mustRun(n, s, func(pr *sim.Proc) int {
			return c.Conciliate(pr, inputs[pr.ID()])
		})
		surv := c.SurvivorsPerRound()
		mu.Lock()
		for i := 0; i < rounds && i < len(surv); i++ {
			sums[i] += float64(surv[i] - 1)
		}
		mu.Unlock()
	})
	for i := range sums {
		sums[i] /= float64(trials)
	}
	return sums
}

// e4SifterDecay measures Algorithm 2's doubly-exponential survivor decay
// against the closed form x_i of equation (2) and Lemma 3.
func e4SifterDecay() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "Algorithm 2 survivor decay per round",
		Claim: "Lemma 3: E[X_i] <= x_i = 2^(2-2^(1-i)) (n-1)^(2^-i); x_{ceil(loglog n)} < 8",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			trials := p.trials(20, 60)
			nsweep := p.ns([]int{16, 64}, []int{16, 64, 256, 1024})

			tbl := Table{
				ID:      "E4",
				Title:   "mean excess personae X_i after round i (Algorithm 2, tuned p_i)",
				Columns: []string{"n", "round i", "mean X_i", "bound x_i"},
				Notes: []string{
					"Rounds shown up to ceil(log log n) + 1; the bound column is " +
						"equation (2). Lemma 3 requires mean <= bound, and the bound " +
						"at round ceil(log log n) is below 8 for every n.",
				},
			}
			for _, n := range nsweep {
				tuned := stats.CeilLogLog(n) + 1
				means := sifterSurvivorMeans(p, n, tuned, trials, 4, nil)
				for i := 0; i < tuned; i++ {
					bound := stats.SifterDecayBound(n, i+1)
					if i+1 > stats.CeilLogLog(n) {
						// Beyond the tuned prefix Lemma 4's geometric decay
						// applies instead.
						bound = 8 * math.Pow(0.75, float64(i+1-stats.CeilLogLog(n)))
					}
					tbl.AddRow(n, i+1, means[i], bound)
				}
			}
			return []Table{tbl}
		},
	}
}

// e5SifterEpsilon measures Lemma 4's geometric tail and Theorem 2's
// agreement probability.
func e5SifterEpsilon() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "Algorithm 2 geometric tail and agreement probability",
		Claim: "Lemma 4: E[X_{ceil(loglog n)+j}] <= 8 (3/4)^j; Theorem 2: agreement >= 1-eps",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			trials := p.trials(40, 180)
			n := 256
			if p.Quick {
				n = 32
			}

			tail := Table{
				ID:      "E5a",
				Title:   fmt.Sprintf("post-sift geometric tail (n=%d)", n),
				Columns: []string{"j (rounds past ceil(loglog n))", "mean X", "Lemma 4 bound 8*(3/4)^j"},
			}
			loglog := stats.CeilLogLog(n)
			extra := 12
			if p.Quick {
				extra = 6
			}
			means := sifterSurvivorMeans(p, n, loglog+extra, trials, 5, nil)
			// means[i] is E[X] after round i+1; j rounds past the tuned
			// prefix is round loglog+j.
			for j := 0; j < extra; j++ {
				tail.AddRow(j, means[loglog+j-1], 8*math.Pow(0.75, float64(j)))
			}

			agreeTbl := Table{
				ID:      "E5b",
				Title:   fmt.Sprintf("agreement rate of Algorithm 2 (n=%d)", n),
				Columns: []string{"epsilon", "rounds R", "agreement rate", "paper floor 1-eps"},
			}
			for _, eps := range []float64{0.5, 0.25, 1.0 / 16} {
				agreed := make([]bool, trials)
				p.forEachTrial(p.Seed+6+uint64(eps*1024), trials, func(t int, s trialSeeds) {
					c := conciliator.NewSifter[int](n, conciliator.SifterConfig{Epsilon: eps})
					inputs := distinctInputs(n)
					outs, fin, _ := mustRun(n, s, func(pr *sim.Proc) int {
						return c.Conciliate(pr, inputs[pr.ID()])
					})
					agreed[t] = agree(outs, fin)
				})
				hits := 0
				for _, a := range agreed {
					if a {
						hits++
					}
				}
				rate, ci := stats.Proportion(hits, trials)
				agreeTbl.AddRow(eps, conciliator.SifterRounds(n, eps), pct(rate, ci), 1-eps)
			}
			return []Table{tail, agreeTbl}
		},
	}
}

// e6SifterSteps measures Theorem 2's O(log log n + log 1/eps) individual
// step complexity.
func e6SifterSteps() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Algorithm 2 individual step complexity scaling",
		Claim: "Theorem 2: O(log log n + log(1/eps)) steps per process (1 per round)",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			nsweep := p.ns([]int{4, 64, 1024}, []int{4, 16, 256, 4096, 16384})
			const eps = 0.5

			tbl := Table{
				ID:      "E6",
				Title:   "per-process steps of Algorithm 2 (eps = 1/2)",
				Columns: []string{"n", "ceil(loglog n)", "rounds R", "steps/process (measured)", "R (predicted)"},
				Notes: []string{
					"One register operation per round; growth across the sweep is " +
						"the ceil(log log n) term only.",
				},
			}
			for _, n := range nsweep {
				c := conciliator.NewSifter[int](n, conciliator.SifterConfig{Epsilon: eps})
				inputs := distinctInputs(n)
				seeds := seedsFor(p.Seed+7, 1)
				_, _, res := mustRun(n, seeds[0], func(pr *sim.Proc) int {
					return c.Conciliate(pr, inputs[pr.ID()])
				})
				tbl.AddRow(n, stats.CeilLogLog(n), c.Rounds(), float64(res.MaxSteps()), c.Rounds())
			}
			return []Table{tbl}
		},
	}
}
