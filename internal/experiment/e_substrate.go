package experiment

import (
	"fmt"

	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/sim"
)

// e15Substrate prices the paper's unit-cost snapshot assumption by
// running Algorithm 1 on four substrates that all satisfy its interface:
// the unit-cost snapshot (the paper's model), the unit-cost max register
// (footnote 1), the tree max register built from registers, and the
// Afek-et-al. snapshot built from registers.
func e15Substrate() Experiment {
	return Experiment{
		ID:    "E15",
		Title: "Cost of the unit-cost snapshot assumption",
		Claim: "Section 2 footnotes: Algorithm 1 needs only max registers; snapshots are constructible from registers at higher cost",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			nsweep := p.ns([]int{8, 32}, []int{8, 32, 64})

			tbl := Table{
				ID:    "E15",
				Title: "Algorithm 1 steps per process by substrate (eps = 1/2)",
				Columns: []string{
					"n", "unit snapshot", "unit max register",
					"tree max register (registers)", "Afek snapshot (registers)",
				},
				Notes: []string{
					"All four substrates run the identical Algorithm 1 code and " +
						"agree with the same probability; only the charged step " +
						"counts differ. The unit-cost columns stay at 2 steps/round " +
						"(log*-driven); the register-built substrates pay " +
						"Theta(log range) and Theta(n) factors respectively — the " +
						"gap is what 'practically irrelevant but theoretically " +
						"significant' refers to in the conclusions.",
				},
			}
			configs := []conciliator.PriorityConfig{
				{},
				{UseMaxRegisters: true},
				{UseMaxRegisters: true, TreeMax: true},
				{UseAfekSnapshot: true},
			}
			for _, n := range nsweep {
				row := []any{n}
				for ci, cfg := range configs {
					c := conciliator.NewPriority[int](n, cfg)
					inputs := distinctInputs(n)
					seeds := seedsFor(p.Seed+18+uint64(ci), 1)
					_, _, res := mustRun(n, seeds[0], func(pr *sim.Proc) int {
						return c.Conciliate(pr, inputs[pr.ID()])
					})
					row = append(row, float64(res.TotalSteps)/float64(n))
					if res.MaxSteps() > int64(c.StepBound()) {
						panic(fmt.Sprintf("substrate %d exceeded StepBound: %d > %d", ci, res.MaxSteps(), c.StepBound()))
					}
				}
				tbl.AddRow(row...)
			}
			return []Table{tbl}
		},
	}
}
