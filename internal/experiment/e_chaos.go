package experiment

import (
	"fmt"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/des"
	"github.com/oblivious-consensus/conciliator/internal/stats"
)

// chaosTrialSet is one E21 cell: the per-trial results plus how many
// trials ended in a run error (nontermination under weakened semantics
// is a finding to report, not a programming bug to panic on).
type chaosTrialSet struct {
	desTrialSet
	runErrs int
}

// runChaosCell is runDESCell with weakened-semantics tolerance: when
// `weakened` is set, run errors are counted instead of panicking —
// wiping the memory server's registers voids the termination analysis
// along with the safety proofs, so both kinds of failure are data.
func runChaosCell(p Params, cfg des.Config, trials int, seedOff uint64, weakened bool) chaosTrialSet {
	if !weakened {
		return chaosTrialSet{desTrialSet: runDESCell(p, cfg, trials, seedOff)}
	}
	set := chaosTrialSet{desTrialSet: desTrialSet{results: make([]des.Result, trials)}}
	errs := make([]bool, trials)
	p.forEachTrial(p.Seed+seedOff, trials, func(t int, s trialSeeds) {
		c := cfg
		c.Seed = s.alg
		res, err := des.Run(c)
		set.results[t] = res
		errs[t] = err != nil
	})
	for t, r := range set.results {
		if errs[t] {
			set.runErrs++
		}
		for _, s := range r.Steps {
			set.steps = append(set.steps, float64(s))
		}
	}
	return set
}

// e21Chaos is the crash-recovery chaos matrix: the E18 message-passing
// DES swept across {crash rate x restart variant x loss x partition}
// for every protocol. Under atomic shared-memory semantics (the server
// restarts durable, so the objects never lose state) the chaos layer is
// below the model the proofs live in: safety must be untouched, and the
// experiment panics if any such cell trips a monitor. The amnesiac-
// server scenario deliberately breaks the model; its violations are the
// point.
func e21Chaos() Experiment {
	return Experiment{
		ID:    "E21",
		Title: "Crash-recovery chaos matrix: crashes, restarts, retries on the DES",
		Claim: "Robustness: crash/restart chaos under atomic semantics stretches work and virtual time but never safety (Theorems 1-2 assume nothing about process speed); wiping the memory server leaves the model, and the monitors catch it",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			trials := p.trials(3, 5)
			nsweep := p.ns([]int{48, 96}, []int{1000, 10000})
			protocols := des.Protocols()

			partition := des.Partition{From: 5 * time.Millisecond, Until: 20 * time.Millisecond, Frac: 0.3}
			scenarios := []struct {
				name     string
				net      des.NetConfig
				chaos    des.ChaosConfig
				retry    des.RetryPolicy
				weakened bool
				giveUp   bool
			}{
				{name: "no chaos (baseline)"},
				{
					name:  "proc crashes 20% durable",
					chaos: des.ChaosConfig{ProcRate: 0.2, ProcRestart: des.RestartDurable},
				},
				{
					name:  "proc crashes 20% amnesiac",
					chaos: des.ChaosConfig{ProcRate: 0.2, ProcRestart: des.RestartAmnesiac},
				},
				{
					name:  "server outages x2 durable",
					chaos: des.ChaosConfig{ServerWindows: 2, ServerRestart: des.RestartDurable, MeanDown: 3 * time.Millisecond},
				},
				{
					name: "crashes + loss 0.05 + partition",
					net:  des.NetConfig{Loss: 0.05, Partitions: []des.Partition{partition}},
					chaos: des.ChaosConfig{
						ProcRate: 0.2, ProcRestart: des.RestartAmnesiac,
						ServerWindows: 1, ServerRestart: des.RestartDurable,
						MeanDown: 3 * time.Millisecond,
					},
					retry: des.RetryPolicy{Jitter: 0.2},
				},
				{
					// Graceful degradation: a server outage far longer than
					// the bounded retry budget can bridge. Every process
					// resigns instead of wedging the event loop, and the
					// per-process outcomes say so.
					name: "long outage, bounded retries (give-up)",
					chaos: des.ChaosConfig{Events: []des.ChaosEvent{
						{Target: des.ServerNode, At: 2 * time.Millisecond, Down: 500 * time.Millisecond, Restart: des.RestartDurable},
					}},
					retry:  des.RetryPolicy{MaxRetries: 4},
					giveUp: true,
				},
				{
					// The weakened regime: amnesiac server restarts wipe the
					// registers. The horizon stretches the windows across the
					// whole run so one tends to land in the adopt-commit
					// tail, where the damage splits decisions.
					name: "server amnesia (weakened)",
					chaos: des.ChaosConfig{
						ServerWindows: 2, ServerRestart: des.RestartAmnesiac,
						Horizon: 48 * time.Millisecond, MeanDown: 2 * time.Millisecond,
					},
					weakened: true,
				},
			}

			matrix := Table{
				ID:      "E21a",
				Title:   "chaos matrix: crash/restart/retry scenarios per protocol and n",
				Columns: []string{"n", "protocol", "scenario", "steps/proc", "crashes", "restarts", "resyncs", "wipes", "gave up", "all decided", "run errors", "violations"},
				Notes: []string{
					"Counts are totals across trials. Scenarios except the last run under " +
						"atomic semantics (durable server restarts): there the monitors must " +
						"stay quiet — the run panics otherwise — and processes either decide " +
						"or (give-up scenario only) resign after their bounded retry budget. " +
						"The weakened scenario wipes the server's registers on restart; its " +
						"violations and run errors are expected findings that quantify how " +
						"far safety depends on the atomic-memory assumption.",
					"resyncs = amnesiac process restarts that re-established their RPC " +
						"session; wipes = amnesiac server restarts that lost every register.",
				},
			}

			var cell uint64
			for _, n := range nsweep {
				for _, protocol := range protocols {
					for _, sc := range scenarios {
						cell++
						cfg := des.Config{
							N:        n,
							Protocol: protocol,
							Net:      sc.net,
							Chaos:    sc.chaos,
							Retry:    sc.retry,
						}
						set := runChaosCell(p, cfg, trials, 2100+cell, sc.weakened)
						var crashes, restarts, resyncs, wipes int64
						gaveUp := 0
						for _, r := range set.results {
							crashes += r.Crashes
							restarts += r.Restarts
							resyncs += r.Resyncs
							wipes += r.Wipes
							gaveUp += r.GaveUp
						}
						if !sc.weakened && set.violations() > 0 {
							panic(fmt.Sprintf("experiment: E21 %s n=%d %q: safety violated under atomic semantics", protocol, n, sc.name))
						}
						if sc.giveUp && gaveUp == 0 {
							panic(fmt.Sprintf("experiment: E21 %s n=%d %q: give-up scenario degraded nobody", protocol, n, sc.name))
						}
						matrix.AddRow(n, protocol, sc.name,
							stats.Summarize(set.steps).String(),
							crashes, restarts, resyncs, wipes, gaveUp,
							fmt.Sprintf("%v", set.allDecided()),
							set.runErrs, set.violations())
					}
				}
			}
			return []Table{matrix}
		},
	}
}
