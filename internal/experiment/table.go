package experiment

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a titled grid of cells plus
// explanatory notes.
type Table struct {
	ID      string
	Title   string
	Notes   []string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; cells are forwarded through fmt for convenience.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	if len(t.Columns) > 0 {
		b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
		b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
		for _, row := range t.Rows {
			b.WriteString("| " + strings.Join(row, " | ") + " |\n")
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}

// TSV renders the table as tab-separated values (no title or notes).
func (t *Table) TSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, "\t") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t") + "\n")
	}
	return b.String()
}

// Text renders the table as an aligned plain-text grid.
func (t *Table) Text() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "%s\n", n)
	}
	return b.String()
}

// trimFloat renders floats compactly: integers without decimals, others
// with up to three significant decimals.
func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// pct renders a proportion with its confidence half-width.
func pct(p, ci float64) string {
	return fmt.Sprintf("%.3f ± %.3f", p, ci)
}
