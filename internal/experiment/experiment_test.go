package experiment

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 21 {
		t.Fatalf("%d experiments registered, want 21", len(all))
	}
	seen := make(map[string]bool)
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if len(IDs()) != 21 {
		t.Fatalf("IDs() returned %d", len(IDs()))
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Fatal("E1 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 should not exist")
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables := e.Run(Params{Quick: true, Trials: 5})
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tbl := range tables {
				if len(tbl.Columns) == 0 {
					t.Fatalf("table %s has no columns", tbl.ID)
				}
				if len(tbl.Rows) == 0 {
					t.Fatalf("table %s has no rows", tbl.ID)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Columns) {
						t.Fatalf("table %s row width %d != %d columns", tbl.ID, len(row), len(tbl.Columns))
					}
				}
				if !strings.Contains(tbl.Markdown(), tbl.Title) {
					t.Fatalf("markdown missing title for %s", tbl.ID)
				}
				if tbl.TSV() == "" || tbl.Text() == "" {
					t.Fatalf("empty rendering for %s", tbl.ID)
				}
			}
		})
	}
}

func TestE1DecayRespectsBoundsQuick(t *testing.T) {
	e, _ := ByID("E1")
	tables := e.Run(Params{Quick: true, Trials: 30})
	tbl := tables[0]
	for _, row := range tbl.Rows {
		mean, err1 := strconv.ParseFloat(row[2], 64)
		bound, err2 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %v", row)
		}
		// Allow generous sampling slack (2x + 1).
		if mean > 2*bound+1 {
			t.Fatalf("row %v: mean %v far above bound %v", row, mean, bound)
		}
	}
}

func TestE4DecayRespectsBoundsQuick(t *testing.T) {
	e, _ := ByID("E4")
	tables := e.Run(Params{Quick: true, Trials: 30})
	for _, row := range tables[0].Rows {
		mean, _ := strconv.ParseFloat(row[2], 64)
		bound, _ := strconv.ParseFloat(row[3], 64)
		if mean > 2*bound+1 {
			t.Fatalf("row %v: mean %v far above bound %v", row, mean, bound)
		}
	}
}

func TestE2AgreementAboveFloorQuick(t *testing.T) {
	e, _ := ByID("E2")
	tables := e.Run(Params{Quick: true, Trials: 30})
	for _, row := range tables[0].Rows {
		rate := parseRate(t, row[2])
		floor, _ := strconv.ParseFloat(row[3], 64)
		// Allow sampling noise below the floor only marginally.
		if rate < floor-0.15 {
			t.Fatalf("row %v: rate %v far below floor %v", row, rate, floor)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	e, _ := ByID("E3")
	a := e.Run(Params{Quick: true})
	b := e.Run(Params{Quick: true})
	if a[0].Markdown() != b[0].Markdown() {
		t.Fatal("E3 output not deterministic in the master seed")
	}
}

func TestSeedsForDisjointStreams(t *testing.T) {
	seeds := seedsFor(1, 100)
	seen := make(map[uint64]bool)
	for _, s := range seeds {
		if s.alg == s.sched {
			t.Fatal("algorithm and schedule seeds collided")
		}
		if seen[s.alg] || seen[s.sched] {
			t.Fatal("seed reuse across trials")
		}
		seen[s.alg], seen[s.sched] = true, true
	}
}

func TestForEachTrialCoversAllTrials(t *testing.T) {
	for _, parallelism := range []int{1, 3, 64, 200} {
		hit := make([]bool, 64)
		p := Params{Parallelism: parallelism}
		p.forEachTrial(7, len(hit), func(trial int, s trialSeeds) {
			hit[trial] = true
		})
		for i, h := range hit {
			if !h {
				t.Fatalf("parallelism %d: trial %d skipped", parallelism, i)
			}
		}
	}
}

func TestWorkloads(t *testing.T) {
	d := distinctInputs(4)
	for i, v := range d {
		if v != i {
			t.Fatalf("distinctInputs = %v", d)
		}
	}
	b := binaryInputs(5)
	want := []int{0, 1, 0, 1, 0}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("binaryInputs = %v", b)
		}
	}
}

func TestAgreeHelper(t *testing.T) {
	tests := []struct {
		name string
		outs []int
		fin  []bool
		want bool
	}{
		{name: "all agree", outs: []int{1, 1, 1}, fin: []bool{true, true, true}, want: true},
		{name: "disagree", outs: []int{1, 2, 1}, fin: []bool{true, true, true}, want: false},
		{name: "disagreement crashed away", outs: []int{1, 2, 1}, fin: []bool{true, false, true}, want: true},
		{name: "none finished", outs: []int{1, 2}, fin: []bool{false, false}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := agree(tt.outs, tt.fin); got != tt.want {
				t.Errorf("agree = %v", got)
			}
		})
	}
}

func parseRate(t *testing.T, cell string) float64 {
	t.Helper()
	fields := strings.Fields(cell)
	if len(fields) == 0 {
		t.Fatalf("empty rate cell %q", cell)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatalf("unparseable rate %q", cell)
	}
	return v
}

func TestTrimFloat(t *testing.T) {
	tests := []struct {
		give float64
		want string
	}{
		{1, "1"}, {1.5, "1.5"}, {0.125, "0.125"}, {0.1239, "0.124"}, {-2, "-2"}, {0, "0"},
	}
	for _, tt := range tests {
		if got := trimFloat(tt.give); got != tt.want {
			t.Errorf("trimFloat(%v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{ID: "T", Title: "demo", Columns: []string{"a", "b"}, Notes: []string{"note"}}
	tbl.AddRow(1, "x")
	tbl.AddRow(2.5, "y")
	md := tbl.Markdown()
	for _, want := range []string{"| a | b |", "| 1 | x |", "| 2.5 | y |", "note"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	tsv := tbl.TSV()
	if !strings.HasPrefix(tsv, "a\tb\n") {
		t.Errorf("tsv header wrong: %q", tsv)
	}
	txt := tbl.Text()
	if !strings.Contains(txt, "demo") {
		t.Errorf("text missing title: %q", txt)
	}
}

func TestTablesIdenticalAcrossParallelism(t *testing.T) {
	// The determinism contract of the trial runner: identical seed =>
	// byte-identical tables no matter how many workers run the trials.
	// E1 covers the plain random-schedule path, E10 covers every schedule
	// family including crash schedules.
	for _, id := range []string{"E1", "E10"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		render := func(parallelism int) string {
			var b strings.Builder
			for _, tbl := range e.Run(Params{Quick: true, Parallelism: parallelism}) {
				b.WriteString(tbl.TSV())
			}
			return b.String()
		}
		serial := render(1)
		wide := render(runtime.NumCPU() + 3)
		if serial != wide {
			t.Errorf("%s: tables differ between Parallelism 1 and %d:\n%s\n---\n%s",
				id, runtime.NumCPU()+3, serial, wide)
		}
	}
}
