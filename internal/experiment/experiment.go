// Package experiment defines the reproduction experiments E1–E12: one per
// quantitative claim in the paper (lemmas, theorems, corollaries) plus
// the ablations called out in DESIGN.md. Each experiment runs trials of
// the relevant protocol under oblivious schedules and renders tables
// comparing measured values with the paper's bounds.
//
// Experiments are deterministic in (Params.Seed, Params.Trials): trial t
// derives its algorithm seed and its adversary seed from disjoint streams
// of the master seed.
package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// Params controls an experiment run.
type Params struct {
	// Trials per configuration (0 = per-experiment default).
	Trials int

	// Seed is the master seed (0 means the fixed default 20120716 — the
	// PODC'12 session date, chosen to make reports reproducible).
	Seed uint64

	// Quick shrinks the sweeps so the whole suite finishes in seconds;
	// used by tests and `go test -bench`.
	Quick bool

	// Parallelism is the number of trial workers (0 or negative means
	// runtime.NumCPU()). Results are byte-identical for any value: trials
	// derive their seeds by index and write only to per-trial slots.
	Parallelism int
}

func (p Params) withDefaults() Params {
	if p.Seed == 0 {
		p.Seed = 20120716
	}
	if p.Parallelism < 1 {
		p.Parallelism = runtime.NumCPU()
	}
	return p
}

// trials returns the trial count: the explicit value, or quick/full
// defaults.
func (p Params) trials(quickDefault, fullDefault int) int {
	if p.Trials > 0 {
		return p.Trials
	}
	if p.Quick {
		return quickDefault
	}
	return fullDefault
}

// ns returns the process-count sweep: quick or full.
func (p Params) ns(quick, full []int) []int {
	if p.Quick {
		return quick
	}
	return full
}

// Experiment is a registered, runnable reproduction experiment.
type Experiment struct {
	// ID is the experiment identifier (E1..E12).
	ID string
	// Title is a one-line description.
	Title string
	// Claim cites the paper statement being measured.
	Claim string
	// Run executes the experiment and returns its tables.
	Run func(p Params) []Table
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		e1PriorityDecay(),
		e2PriorityAgreement(),
		e3PrioritySteps(),
		e4SifterDecay(),
		e5SifterEpsilon(),
		e6SifterSteps(),
		e7Embedded(),
		e8Consensus(),
		e9AdoptCommit(),
		e10Schedules(),
		e11Ablations(),
		e12TAS(),
		e13Multiplicity(),
		e14Adversary(),
		e15Substrate(),
		e16EpsilonNecessity(),
		e17FaultSweep(),
		e18DES(),
		e19AttackSearch(),
		e20MonteCarlo(),
		e21Chaos(),
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment ids.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// trialSeeds holds the two independent seed streams of one trial.
type trialSeeds struct {
	alg   uint64
	sched uint64
}

// seedsFor derives per-trial seeds from the master seed. The algorithm
// and adversary streams are separate forks, preserving obliviousness.
func seedsFor(master uint64, trials int) []trialSeeds {
	algRng := xrand.New(master).ForkNamed(0xa16)
	schRng := xrand.New(master).ForkNamed(0x5c4ed)
	out := make([]trialSeeds, trials)
	for i := range out {
		out[i] = trialSeeds{alg: algRng.Uint64(), sched: schRng.Uint64()}
	}
	return out
}

// forEachTrial runs fn(trial, seeds) for every trial across
// p.Parallelism workers pulling trial indices from a shared atomic
// counter. fn must only write to per-trial slots; trial seeds are derived
// by index, so the schedule of workers cannot affect any result.
func (p Params) forEachTrial(master uint64, trials int, fn func(trial int, s trialSeeds)) {
	seeds := seedsFor(master, trials)
	workers := p.Parallelism
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > trials {
		workers = trials
	}
	if workers <= 1 {
		for t := 0; t < trials; t++ {
			fn(t, seeds[t])
		}
		return
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= trials {
					return
				}
				fn(t, seeds[t])
			}
		}()
	}
	wg.Wait()
}

// distinctInputs is the id-consensus workload: every process proposes its
// own id, the hardest case for survivor counting.
func distinctInputs(n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	return in
}

// binaryInputs is the binary-consensus workload: half zeros, half ones.
func binaryInputs(n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = i % 2
	}
	return in
}

// agree reports whether all finished outputs are equal (vacuously true
// when none finished).
func agree(outs []int, finished []bool) bool {
	first := true
	var v int
	for i, o := range outs {
		if !finished[i] {
			continue
		}
		if first {
			v, first = o, false
			continue
		}
		if o != v {
			return false
		}
	}
	return true
}

// runBody executes body once under a fresh random oblivious schedule.
func runBody(n int, s trialSeeds, body func(p *sim.Proc) int) ([]int, []bool, sim.Result, error) {
	src := sched.NewRandom(n, xrand.New(s.sched))
	return sim.Collect(src, sim.Config{AlgSeed: s.alg}, body)
}

// mustRun is runBody that panics on simulator errors (experiments treat
// them as programming bugs, not data).
func mustRun(n int, s trialSeeds, body func(p *sim.Proc) int) ([]int, []bool, sim.Result) {
	outs, fin, res, err := runBody(n, s, body)
	if err != nil {
		panic(fmt.Sprintf("experiment: simulation failed: %v", err))
	}
	return outs, fin, res
}
