package experiment

import (
	"sync"

	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/stats"
)

// e7Embedded measures Theorem 3: Algorithm 3's agreement probability
// (>= 1/8), worst-case individual steps (O(log log n)), and expected
// total steps (O(n)), against the plain sifter's Theta(n log log n)
// total.
func e7Embedded() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Algorithm 3: linear expected total work",
		Claim: "Theorem 3: agreement >= 1/8, O(log log n) worst-case individual steps, O(n) expected total steps",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			trials := p.trials(20, 50)
			nsweep := p.ns([]int{16, 64}, []int{16, 64, 256, 1024})

			main := Table{
				ID:    "E7a",
				Title: "Algorithm 3 vs plain Algorithm 2 (distinct inputs)",
				Columns: []string{
					"n", "agreement rate", "floor 1/8",
					"total steps / n (Alg 3)", "total steps / n (Alg 2)",
					"max individual steps (Alg 3)", "step bound",
				},
				Notes: []string{
					"Total steps per process of Algorithm 3 must stay O(1) as n " +
						"grows, while the plain sifter pays Theta(log log n + " +
						"log(1/eps)) per process in every execution. 'Who wins': " +
						"Algorithm 3 on total work, with the same O(log log n) " +
						"worst-case individual bound.",
				},
			}
			exits := Table{
				ID:      "E7b",
				Title:   "Algorithm 3 exit paths (fractions of processes)",
				Columns: []string{"n", "completed sifter", "read proposal", "wrote proposal"},
			}

			for _, n := range nsweep {
				var (
					mu             sync.Mutex
					agreed         int
					totalEmb       float64
					totalSift      float64
					maxIndividual  int64
					sumSift        int64
					sumRead        int64
					sumWrite       int64
					stepBoundValue int
				)
				p.forEachTrial(p.Seed+8, trials, func(t int, s trialSeeds) {
					inputs := distinctInputs(n)

					emb := conciliator.NewEmbedded[int](n, conciliator.EmbeddedConfig{})
					outs, fin, resEmb := mustRun(n, s, func(pr *sim.Proc) int {
						return emb.Conciliate(pr, inputs[pr.ID()])
					})

					sift := conciliator.NewSifter[int](n, conciliator.SifterConfig{Epsilon: 0.25})
					_, _, resSift := mustRun(n, s, func(pr *sim.Proc) int {
						return sift.Conciliate(pr, inputs[pr.ID()])
					})

					es, er, ew := emb.ExitCounts()
					mu.Lock()
					if agree(outs, fin) {
						agreed++
					}
					totalEmb += float64(resEmb.TotalSteps)
					totalSift += float64(resSift.TotalSteps)
					if m := resEmb.MaxSteps(); m > maxIndividual {
						maxIndividual = m
					}
					sumSift += es
					sumRead += er
					sumWrite += ew
					stepBoundValue = emb.StepBound()
					mu.Unlock()
				})
				rate, ci := stats.Proportion(agreed, trials)
				den := float64(trials) * float64(n)
				main.AddRow(n, pct(rate, ci), 1.0/8,
					totalEmb/den, totalSift/den,
					float64(maxIndividual), stepBoundValue)
				exits.AddRow(n, float64(sumSift)/den, float64(sumRead)/den, float64(sumWrite)/den)
			}
			return []Table{main, exits}
		},
	}
}
