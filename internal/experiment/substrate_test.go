package experiment

import (
	"fmt"
	"strings"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/sim"
)

// TestExclusiveSubstrateByteIdentity runs the E1/E6/E7 quick tables once
// on the exclusive (lock-elided) substrate and once on the locked one and
// requires bit-for-bit identical output. Lock elision is a pure execution
// optimization: the controlled scheduler already serializes every
// operation, so whether an operation additionally takes the object mutex
// must be unobservable in any modeled quantity.
func TestExclusiveSubstrateByteIdentity(t *testing.T) {
	render := func(id string) string {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		var b strings.Builder
		for _, tbl := range e.Run(Params{Quick: true, Trials: 8, Parallelism: 2}) {
			fmt.Fprintln(&b, tbl.Text())
		}
		return b.String()
	}

	for _, id := range []string{"E1", "E6", "E7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			prev := sim.SetExclusiveSubstrate(true)
			exclusive := render(id)
			sim.SetExclusiveSubstrate(false)
			locked := render(id)
			sim.SetExclusiveSubstrate(prev)
			if exclusive != locked {
				t.Errorf("%s tables differ between exclusive and locked substrate.\nexclusive:\n%s\nlocked:\n%s", id, exclusive, locked)
			}
		})
	}
}
