package experiment

import (
	"errors"
	"fmt"
	"path/filepath"

	"github.com/oblivious-consensus/conciliator/internal/adoptcommit"
	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/consensus"
	"github.com/oblivious-consensus/conciliator/internal/fault"
	"github.com/oblivious-consensus/conciliator/internal/memory"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// Workload names resolvable by RunFaultTrial and repro replay.
const (
	// WorkloadConsensus runs the register-model consensus (Algorithm 2
	// sifters + hash adopt-commit, the Corollary 2 stack) with distinct
	// inputs under the agreement/validity/adopt-commit monitors. The
	// register model is the right one for crash-recovery: its objects
	// are anonymous and stay coherent when an amnesiac process
	// re-proposes, unlike the pid-indexed snapshot adopt-commit.
	WorkloadConsensus = "consensus-register"
	// WorkloadMaxReg probes a unit-cost max register under the
	// monotonicity monitor: each process alternates increasing WriteMax
	// keys with ReadMax.
	WorkloadMaxReg = "maxreg-probe"
)

// FaultWorkloads lists the known workload names.
func FaultWorkloads() []string { return []string{WorkloadConsensus, WorkloadMaxReg} }

// defaultFaultMaxSlots bounds faulted trials tightly enough that genuine
// non-termination surfaces in milliseconds rather than at the
// simulator's 1<<26 default.
const defaultFaultMaxSlots = 1 << 20

// FaultTrialSpec pins down one faulted trial completely: a trial is a
// pure function of this struct, which is why repro artifacts only need
// to record it.
type FaultTrialSpec struct {
	N         int
	SchedKind sched.Kind
	SchedSeed uint64
	AlgSeed   uint64
	MaxSlots  int64
	Workload  string
	Fault     *fault.Schedule
}

// FaultTrialResult reports one faulted trial.
type FaultTrialResult struct {
	// Violations is every safety-monitor firing; empty means the trial
	// was safe.
	Violations []fault.Violation
	// Res is the simulator result (zero if the run never started).
	Res sim.Result
}

// RunFaultTrial executes one faulted trial under always-on safety
// monitors. Process panics and slot-budget blowouts are converted into
// "panic" and "nontermination" violations rather than propagating: in a
// fault sweep they are findings, not harness bugs.
func RunFaultTrial(spec FaultTrialSpec) FaultTrialResult {
	mon := fault.NewMonitor()
	maxSlots := spec.MaxSlots
	if maxSlots <= 0 {
		maxSlots = defaultFaultMaxSlots
	}
	cfg := sim.Config{AlgSeed: spec.AlgSeed, MaxSlots: maxSlots, Faults: spec.Fault}
	var (
		res    sim.Result
		runErr error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				mon.Report("panic", "%v", r)
			}
		}()
		src := sched.New(spec.SchedKind, spec.N, spec.SchedSeed)
		switch spec.Workload {
		case WorkloadConsensus:
			inputs := distinctInputs(spec.N)
			proto := consensus.New(spec.N, consensus.Config[int]{
				NewConciliator: func(int) conciliator.Interface[int] {
					return conciliator.NewSifter[int](spec.N, conciliator.SifterConfig{Epsilon: 0.5})
				},
				NewAdoptCommit: func(int) adoptcommit.Object[int] {
					return adoptcommit.NewHashAC[int]()
				},
				WrapAdoptCommit: func(phase int, ac adoptcommit.Object[int]) adoptcommit.Object[int] {
					return adoptcommit.NewChecked(ac, func(o adoptcommit.Observation[int]) {
						if !o.Completed {
							// A crash-recovery abort can strand this value
							// in shared state, so it counts as proposed.
							mon.ObserveACPropose(phase, o.Pid, o.In)
							return
						}
						mon.ObserveAC(phase, o.Pid, o.In, o.Out, o.Dec == adoptcommit.Commit)
					})
				},
			})
			outs, fin, r, err := sim.Collect(src, cfg, func(p *sim.Proc) int {
				return proto.Propose(p, inputs[p.ID()])
			})
			res, runErr = r, err
			mon.CheckOutcome(inputs, outs, fin)
		case WorkloadMaxReg:
			m := fault.NewMonitoredMaxer(memory.NewMaxRegister[int](), mon)
			r, err := sim.RunControlled(src, func(p *sim.Proc) {
				// Increasing keys per round so a stale read has smaller
				// maxima to regress to; 4 rounds x 2 ops x n processes
				// stays inside the linearize window for n <= 8.
				const rounds = 4
				for rd := 0; rd < rounds; rd++ {
					key := uint64(rd*spec.N + p.ID() + 1)
					m.WriteMax(p, key, int(key))
					m.ReadMax(p)
				}
			}, cfg)
			res, runErr = r, err
			m.Finish()
		default:
			mon.Report("panic", "unknown workload %q", spec.Workload)
		}
	}()
	if runErr != nil {
		if errors.Is(runErr, sim.ErrSlotBudget) {
			mon.Report("nontermination", "%v", runErr)
		} else {
			mon.Report("panic", "simulator error: %v", runErr)
		}
	}
	return FaultTrialResult{Violations: mon.Finish(), Res: res}
}

// FaultCell is one cell of the fault matrix.
type FaultCell struct {
	Semantics fault.Semantics
	Proc      fault.ProcFault
	Kind      sched.Kind
	Workload  string
}

// String renders the cell for reports and artifact names.
func (c FaultCell) String() string {
	return fmt.Sprintf("%s+%s/%s/%s", c.Semantics, c.Proc, c.Kind, c.Workload)
}

// Atomic reports whether the cell runs under the paper's own model
// (atomic registers; stutters, stalls, and crash-recovery do not weaken
// the objects). Safety monitors must never fire in atomic cells — a
// firing there is a bug in the reproduction, not a finding.
func (c FaultCell) Atomic() bool { return c.Semantics == fault.SemAtomic }

// FaultCellResult aggregates one cell's trials.
type FaultCellResult struct {
	Cell      FaultCell
	Trials    int
	Violated  int            // trials with at least one violation
	ByMonitor map[string]int // violation count per monitor name
	Faults    fault.Counts   // faults delivered across all trials
	Repros    []*fault.Repro // shrunk artifacts, at most maxReprosPerCell
}

// maxReprosPerCell bounds shrinking work and artifact spam per cell: the
// first violations are as good as the last.
const maxReprosPerCell = 2

// FaultSweepConfig parameterizes RunFaultSweep. Zero values select the
// full matrix at the defaults noted per field.
type FaultSweepConfig struct {
	Params    Params
	N         int               // processes per trial (default 8)
	Trials    int               // trials per cell (default 25, or 5 under Params.Quick)
	MaxSlots  int64             // slot budget per trial (default defaultFaultMaxSlots)
	Semantics []fault.Semantics // default atomic, regular, safe
	Procs     []fault.ProcFault // default none, stutter, stall, crash-recovery
	Kinds     []sched.Kind      // default sched.Kinds()
	Workloads []string          // default FaultWorkloads()
	MaxArg    int               // max stutter/stall length and staleness depth (0 = fault.Plan default)
	Shrink    int               // shrink budget (repro invocations) per artifact; 0 disables
	ReproDir  string            // save shrunk artifacts here; "" keeps them in memory only
}

func (c FaultSweepConfig) withDefaults() FaultSweepConfig {
	c.Params = c.Params.withDefaults()
	if c.N <= 0 {
		c.N = 8
	}
	if c.Trials <= 0 {
		c.Trials = 25
		if c.Params.Quick {
			c.Trials = 5
		}
	}
	if c.MaxSlots <= 0 {
		c.MaxSlots = defaultFaultMaxSlots
	}
	if len(c.Semantics) == 0 {
		c.Semantics = []fault.Semantics{fault.SemAtomic, fault.SemRegular, fault.SemSafe}
	}
	if len(c.Procs) == 0 {
		c.Procs = []fault.ProcFault{fault.ProcNone, fault.ProcStutter, fault.ProcStall, fault.ProcCrashRecover}
	}
	if len(c.Kinds) == 0 {
		c.Kinds = sched.Kinds()
	}
	if len(c.Workloads) == 0 {
		c.Workloads = FaultWorkloads()
	}
	return c
}

// RunFaultSweep runs the fault matrix: for every cell (register
// semantics x process fault x schedule family x workload) it runs
// Trials seeded trials under the safety monitors, shrinks the fault
// schedule of the first violating trials into minimal repro artifacts,
// and aggregates per-cell results. Deterministic in (Params.Seed,
// Trials, the cell lists); trials within a cell run in parallel per
// Params.Parallelism with byte-identical results.
func RunFaultSweep(cfg FaultSweepConfig) []FaultCellResult {
	cfg = cfg.withDefaults()
	var cells []FaultCell
	for _, sem := range cfg.Semantics {
		for _, pf := range cfg.Procs {
			for _, k := range cfg.Kinds {
				for _, w := range cfg.Workloads {
					cells = append(cells, FaultCell{Semantics: sem, Proc: pf, Kind: k, Workload: w})
				}
			}
		}
	}
	results := make([]FaultCellResult, 0, len(cells))
	for ci, cell := range cells {
		results = append(results, runFaultCell(cfg, cell, cfg.Params.Seed+uint64(ci)*0x9e3779b9))
	}
	return results
}

// runFaultCell runs one cell's trials (in parallel) and shrinks its
// first violations.
func runFaultCell(cfg FaultSweepConfig, cell FaultCell, master uint64) FaultCellResult {
	out := FaultCellResult{Cell: cell, Trials: cfg.Trials, ByMonitor: make(map[string]int)}

	// Fault schedules draw from their own stream, so the same trial
	// keeps the same algorithm and adversary seeds across cells.
	faultSeeds := make([]uint64, cfg.Trials)
	frng := xrand.New(master).ForkNamed(0xfa17)
	for i := range faultSeeds {
		faultSeeds[i] = frng.Uint64()
	}

	type trialOut struct {
		spec       FaultTrialSpec
		violations []fault.Violation
		faults     fault.Counts
	}
	trials := make([]trialOut, cfg.Trials)
	cfg.Params.forEachTrial(master, cfg.Trials, func(t int, s trialSeeds) {
		plan := fault.Plan{N: cfg.N, Seed: faultSeeds[t], Semantics: cell.Semantics, Proc: cell.Proc, MaxArg: int64(cfg.MaxArg)}
		schedule, err := plan.Generate()
		if err != nil {
			panic(fmt.Sprintf("experiment: fault plan: %v", err))
		}
		spec := FaultTrialSpec{
			N:         cfg.N,
			SchedKind: cell.Kind,
			SchedSeed: s.sched,
			AlgSeed:   s.alg,
			MaxSlots:  cfg.MaxSlots,
			Workload:  cell.Workload,
			Fault:     schedule,
		}
		tr := RunFaultTrial(spec)
		trials[t] = trialOut{spec: spec, violations: tr.Violations, faults: tr.Res.Faults}
	})

	for t := range trials {
		out.Faults.Add(trials[t].faults)
		if len(trials[t].violations) == 0 {
			continue
		}
		out.Violated++
		for _, v := range trials[t].violations {
			out.ByMonitor[v.Monitor]++
		}
		if cfg.Shrink > 0 && len(out.Repros) < maxReprosPerCell {
			if r := shrinkTrial(trials[t].spec, trials[t].violations, cfg.Shrink); r != nil {
				out.Repros = append(out.Repros, r)
				if cfg.ReproDir != "" {
					name := fmt.Sprintf("%s_%s_%s_%s_t%d.json", cell.Semantics, cell.Proc, cell.Kind, cell.Workload, t)
					path := filepath.Join(cfg.ReproDir, name)
					if err := r.Save(path); err != nil {
						panic(fmt.Sprintf("experiment: saving repro: %v", err))
					}
					r.SavedPath = path
				}
			}
		}
	}
	return out
}

// shrinkTrial bisects a violating trial's fault schedule to a minimal
// one that still produces some violation, and packages the result.
func shrinkTrial(spec FaultTrialSpec, violations []fault.Violation, budget int) *fault.Repro {
	reproduces := func(cand *fault.Schedule) bool {
		s := spec
		s.Fault = cand
		return len(RunFaultTrial(s).Violations) > 0
	}
	shrunk := fault.Shrink(spec.Fault, budget, reproduces)
	// Re-run under the shrunk schedule so the artifact records the
	// violations it actually reproduces.
	final := spec
	final.Fault = shrunk
	vs := RunFaultTrial(final).Violations
	if len(vs) == 0 {
		// Shrinking contract violated (can only happen when the budget
		// was exhausted mid-phase); fall back to the original.
		final.Fault = spec.Fault
		vs = violations
	}
	return &fault.Repro{
		Schema:     fault.SchemaRepro,
		N:          spec.N,
		Sched:      spec.SchedKind.String(),
		SchedSeed:  spec.SchedSeed,
		AlgSeed:    spec.AlgSeed,
		MaxSlots:   spec.MaxSlots,
		Workload:   spec.Workload,
		Fault:      final.Fault,
		Violations: vs,
	}
}

// ReplayRepro re-executes a repro artifact's trial and reports whether
// a violation reproduced.
func ReplayRepro(r *fault.Repro) (FaultTrialResult, error) {
	if err := r.Validate(); err != nil {
		return FaultTrialResult{}, err
	}
	kind, ok := sched.KindByName(r.Sched)
	if !ok {
		return FaultTrialResult{}, fmt.Errorf("experiment: repro names unknown schedule kind %q", r.Sched)
	}
	known := false
	for _, w := range FaultWorkloads() {
		if w == r.Workload {
			known = true
		}
	}
	if !known {
		return FaultTrialResult{}, fmt.Errorf("experiment: repro names unknown workload %q", r.Workload)
	}
	return RunFaultTrial(FaultTrialSpec{
		N:         r.N,
		SchedKind: kind,
		SchedSeed: r.SchedSeed,
		AlgSeed:   r.AlgSeed,
		MaxSlots:  r.MaxSlots,
		Workload:  r.Workload,
		Fault:     r.Fault,
	}), nil
}

// e17FaultSweep renders a reduced fault matrix as an experiment table:
// the paper's safety properties hold in every atomic-semantics cell and
// degrade measurably once register semantics weaken. The full matrix
// with shrinking and artifacts runs through consensusbench -fault; the
// experiment form stays file-free and quick-capable by design.
func e17FaultSweep() Experiment {
	return Experiment{
		ID:    "E17",
		Title: "Safety under injected faults (weak registers, stutter/stall/crash-recovery)",
		Claim: "Theorems 1-3 assume atomic registers and clean crashes; monitors stay silent there and fire under weakened semantics",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			kinds := []sched.Kind{sched.KindRandom, sched.KindRoundRobin}
			if !p.Quick {
				kinds = sched.Kinds()
			}
			sweep := RunFaultSweep(FaultSweepConfig{
				Params: p,
				Trials: p.trials(3, 20),
				Kinds:  kinds,
			})
			tbl := Table{
				ID:    "E17",
				Title: "Fault matrix: trials with safety violations per cell",
				Columns: []string{
					"semantics", "proc fault", "schedule", "workload",
					"trials", "violated", "monitors", "faults injected",
				},
				Notes: []string{
					"Atomic-semantics cells run the paper's own model (process faults " +
						"but no weakened reads) and must show zero violations; " +
						"regular/safe cells weaken register semantics beyond the " +
						"proofs' assumptions, so monitor firings there measure how " +
						"far the guarantees degrade, not bugs.",
					"The full matrix with counterexample shrinking runs via " +
						"consensusbench -fault.",
				},
			}
			for _, cr := range sweep {
				monitors := "-"
				if len(cr.ByMonitor) > 0 {
					monitors = fmtMonitors(cr.ByMonitor)
				}
				tbl.AddRow(
					cr.Cell.Semantics.String(), cr.Cell.Proc.String(),
					cr.Cell.Kind.String(), cr.Cell.Workload,
					cr.Trials, cr.Violated, monitors, cr.Faults.Total(),
				)
				if cr.Cell.Atomic() && cr.Violated > 0 {
					panic(fmt.Sprintf("experiment: safety violation in atomic cell %s: %v", cr.Cell, cr.ByMonitor))
				}
			}
			return []Table{tbl}
		},
	}
}

// fmtMonitors renders a monitor->count map deterministically.
func fmtMonitors(m map[string]int) string {
	order := []string{
		"agreement", "validity", "ac-coherence", "ac-validity",
		"ac-convergence", "maxreg-monotonic", "nontermination", "panic",
	}
	s := ""
	for _, k := range order {
		if c, ok := m[k]; ok {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s:%d", k, c)
		}
	}
	for k, c := range m {
		seen := false
		for _, o := range order {
			if o == k {
				seen = true
			}
		}
		if !seen {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s:%d", k, c)
		}
	}
	return s
}
