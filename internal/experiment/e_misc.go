package experiment

import (
	"fmt"
	"math"
	"sync"

	"github.com/oblivious-consensus/conciliator/internal/adoptcommit"
	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/stats"
	"github.com/oblivious-consensus/conciliator/internal/tas"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// e9AdoptCommit measures adopt-commit step costs as a function of the
// value-universe size m, locating the conciliator/adopt-commit crossover
// discussed after Corollary 2.
func e9AdoptCommit() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Adopt-commit cost vs value-universe size m",
		Claim: "Section 1.2/3: snapshot AC costs O(1); register AC costs O(log m) here (substituted for Aspnes-Ellen O(log m/loglog m)); for large m the AC dominates the conciliator",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			ms := []int{2, 16, 256, 4096, 65536, 1 << 20}
			if p.Quick {
				ms = []int{2, 256, 65536}
			}
			const n = 16

			tbl := Table{
				ID:    "E9",
				Title: "adopt-commit steps per Propose (n=16, two-value conflict workload)",
				Columns: []string{
					"m", "snapshot AC (measured)", "register AC (measured)",
					"register AC bound 2*ceil(log m)+3", "sifter rounds (n=16) for scale",
				},
				Notes: []string{
					"The register AC column grows with log m while the snapshot AC " +
						"stays at 4 steps; once 2 log m exceeds the conciliator's round " +
						"count, the adopt-commit dominates consensus cost — the paper's " +
						"break-even observation (with our O(log m) substitution the " +
						"crossover shifts by a Theta(log log m) factor; see DESIGN.md).",
				},
			}
			for _, m := range ms {
				bits := stats.CeilLog2(m)
				if bits < 1 {
					bits = 1
				}
				seeds := seedsFor(p.Seed+10+uint64(m), 1)

				snap := adoptcommit.NewSnapshotAC[int](n)
				_, _, resSnap := mustRun(n, seeds[0], func(pr *sim.Proc) int {
					_, v := snap.Propose(pr, pr.ID(), pr.ID()%2*(m-1))
					return v
				})

				reg := adoptcommit.NewRegisterAC[int](adoptcommit.NewDigitCD(adoptcommit.IdentityEncoder(bits)))
				_, _, resReg := mustRun(n, seeds[0], func(pr *sim.Proc) int {
					_, v := reg.Propose(pr, pr.ID(), pr.ID()%2*(m-1))
					return v
				})

				tbl.AddRow(m,
					float64(resSnap.MaxSteps()),
					float64(resReg.MaxSteps()),
					2*bits+3,
					conciliator.SifterRounds(n, 0.5))
			}
			return []Table{tbl}
		},
	}
}

// e10Schedules verifies that agreement probabilities are schedule-shape
// independent — the substance of the oblivious-adversary model.
func e10Schedules() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Robustness across oblivious schedule families",
		Claim: "Section 1.1 model: bounds hold for any schedule fixed independently of the coin flips",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			trials := p.trials(20, 50)
			n := 64
			if p.Quick {
				n = 16
			}

			tbl := Table{
				ID:      "E10",
				Title:   fmt.Sprintf("agreement rates by schedule family (n=%d)", n),
				Columns: []string{"schedule", "Algorithm 1", "Algorithm 2", "Algorithm 3 (floor 1/8)"},
				Notes: []string{
					"Rates for Algorithms 1 and 2 must stay above 1/2 (eps = 1/2) " +
						"under every family; crash-half rates are computed over " +
						"surviving processes.",
				},
			}
			qtbl := Table{
				ID:      "E10b",
				Title:   fmt.Sprintf("Algorithm 2 per-process step quantiles by schedule family (n=%d)", n),
				Columns: []string{"schedule", "p50", "p90", "p99", "max"},
				Notes: []string{
					"Distribution of the per-trial maximum individual step count " +
						"(the paper's step-complexity measure) for the sifting " +
						"conciliator; schedule shape may move constants but not " +
						"the O(log log n + log 1/eps) scale.",
				},
			}
			for _, kind := range sched.Kinds() {
				rates := make([]string, 0, 3)
				maxSteps := make([]float64, trials)
				for alg := 0; alg < 3; alg++ {
					agreed := make([]bool, trials)
					p.forEachTrial(p.Seed+11+uint64(alg)*131+uint64(kind), trials, func(t int, s trialSeeds) {
						var c conciliator.Interface[int]
						switch alg {
						case 0:
							c = conciliator.NewPriority[int](n, conciliator.PriorityConfig{})
						case 1:
							c = conciliator.NewSifter[int](n, conciliator.SifterConfig{})
						default:
							c = conciliator.NewEmbedded[int](n, conciliator.EmbeddedConfig{})
						}
						inputs := distinctInputs(n)
						src := sched.New(kind, n, s.sched)
						outs, fin, res, err := sim.Collect(src, sim.Config{AlgSeed: s.alg}, func(pr *sim.Proc) int {
							return c.Conciliate(pr, inputs[pr.ID()])
						})
						if err != nil {
							panic(err)
						}
						agreed[t] = agree(outs, fin)
						if alg == 1 {
							maxSteps[t] = float64(res.MaxSteps())
						}
					})
					hits := 0
					for _, a := range agreed {
						if a {
							hits++
						}
					}
					rate, ci := stats.Proportion(hits, trials)
					rates = append(rates, pct(rate, ci))
				}
				tbl.AddRow(kind.String(), rates[0], rates[1], rates[2])
				q := stats.Quantiles(maxSteps, 0.50, 0.90, 0.99, 1)
				qtbl.AddRow(kind.String(), q[0], q[1], q[2], q[3])
			}
			return []Table{tbl, qtbl}
		},
	}
}

// e11Ablations measures the design choices the paper's analysis leans on:
// the tuned probability schedule, persona sharing, and the priority
// range.
func e11Ablations() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Ablations: tuned probabilities, persona sharing, priority range",
		Claim: "Design choices from Sections 2-3",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			trials := p.trials(20, 50)

			// (a) tuned p_i vs constant 1/2: rounds to reach one survivor.
			nA := 1024
			if p.Quick {
				nA = 64
			}
			roundsA := 2*stats.CeilLog2(nA) + 8
			a := Table{
				ID:      "E11a",
				Title:   fmt.Sprintf("rounds until a single persona survives (n=%d)", nA),
				Columns: []string{"probability schedule", "mean rounds to 1 survivor", "ceil(loglog n)", "ceil(log n)"},
				Notes: []string{
					"The tuned schedule needs about loglog n rounds; constant 1/2 " +
						"needs about log n (each round only halves the survivors) — " +
						"the crossover the tuned schedule (p_i = 1/sqrt(x_{i-1})) buys.",
				},
			}
			for _, tuned := range []bool{true, false} {
				var probs []float64
				if !tuned {
					probs = []float64{0.5}
				}
				var (
					mu  sync.Mutex
					sum float64
				)
				p.forEachTrial(p.Seed+12, trials, func(t int, s trialSeeds) {
					c := conciliator.NewSifter[int](nA, conciliator.SifterConfig{
						Rounds:         roundsA,
						Probs:          probs,
						TrackSurvivors: true,
					})
					inputs := distinctInputs(nA)
					mustRun(nA, s, func(pr *sim.Proc) int {
						return c.Conciliate(pr, inputs[pr.ID()])
					})
					surv := c.SurvivorsPerRound()
					first := roundsA
					for i, v := range surv {
						if v <= 1 {
							first = i + 1
							break
						}
					}
					mu.Lock()
					sum += float64(first)
					mu.Unlock()
				})
				name := "tuned (p_i = 1/sqrt(x_{i-1}))"
				if !tuned {
					name = "constant 1/2"
				}
				a.AddRow(name, sum/float64(trials), stats.CeilLogLog(nA), stats.CeilLog2(nA))
			}

			// (b) persona sharing on/off under the split schedule.
			nB := 64
			if p.Quick {
				nB = 16
			}
			b := Table{
				ID:      "E11b",
				Title:   fmt.Sprintf("persona sharing ablation (n=%d, Algorithm 2, split schedule)", nB),
				Columns: []string{"personae shared", "agreement rate", "mean survivors after R rounds"},
				Notes: []string{
					"Without shared personae, two carriers of one value flip " +
						"independent coins, so values stop collapsing reliably; the " +
						"analysis of Lemma 2 no longer applies.",
				},
			}
			for _, share := range []bool{true, false} {
				share := share
				var (
					mu       sync.Mutex
					agreed   int
					survSum  float64
					rounds   = conciliator.SifterRounds(nB, 0.5)
					shareVar = share
				)
				p.forEachTrial(p.Seed+13, trials, func(t int, s trialSeeds) {
					c := conciliator.NewSifter[int](nB, conciliator.SifterConfig{
						SharePersonae:  &shareVar,
						TrackSurvivors: true,
					})
					inputs := distinctInputs(nB)
					src := sched.NewSplit(nB, 4*nB)
					outs, fin, _, err := sim.Collect(src, sim.Config{AlgSeed: s.alg}, func(pr *sim.Proc) int {
						return c.Conciliate(pr, inputs[pr.ID()])
					})
					if err != nil {
						panic(err)
					}
					surv := c.SurvivorsPerRound()
					mu.Lock()
					if agree(outs, fin) {
						agreed++
					}
					survSum += float64(surv[len(surv)-1])
					mu.Unlock()
				})
				rate, ci := stats.Proportion(agreed, trials)
				b.AddRow(fmt.Sprintf("%v (R=%d)", share, rounds), pct(rate, ci), survSum/float64(trials))
			}

			// (c) priority range vs duplicate-collision failures.
			nC := 32
			if p.Quick {
				nC = 16
			}
			c := Table{
				ID:    "E11c",
				Title: fmt.Sprintf("priority range ablation (n=%d, Algorithm 1)", nC),
				Columns: []string{
					"priority range", "agreement (origin tie-break)",
					"agreement (first-seen ties)", "paper range ceil(R n^2 / eps)",
				},
				Notes: []string{
					"Tiny ranges cause duplicate priorities — the event D that " +
						"Theorem 1 charges as failure and the paper's range keeps " +
						"below eps/2. Our default origin-id tie-break turns " +
						"(priority, origin) into a total order, silently repairing " +
						"duplicates (left column stays at 1). The first-seen tie " +
						"rule is view-dependent, so duplicates really do break " +
						"agreement (right column) until the range reaches the " +
						"paper's budget.",
				},
			}
			paperRange := uint64(math.Ceil(float64(conciliator.PriorityRounds(nC, 0.5)) * float64(nC) * float64(nC) / 0.5))
			for _, bound := range []uint64{2, 8, 64, paperRange, 0} {
				bound := bound
				rates := make([]string, 2)
				for mode := 0; mode < 2; mode++ {
					mode := mode
					var (
						mu     sync.Mutex
						agreed int
					)
					p.forEachTrial(p.Seed+14+bound+uint64(mode)*977, trials, func(t int, s trialSeeds) {
						pc := conciliator.PriorityConfig{
							PriorityBound:    bound,
							InconsistentTies: mode == 1,
						}
						cc := conciliator.NewPriority[int](nC, pc)
						inputs := distinctInputs(nC)
						outs, fin, _ := mustRun(nC, s, func(pr *sim.Proc) int {
							return cc.Conciliate(pr, inputs[pr.ID()])
						})
						mu.Lock()
						if agree(outs, fin) {
							agreed++
						}
						mu.Unlock()
					})
					rate, ci := stats.Proportion(agreed, trials)
					rates[mode] = pct(rate, ci)
				}
				name := fmt.Sprintf("%d", bound)
				if bound == 0 {
					name = "2^64 (full width)"
				}
				if bound == paperRange {
					name = fmt.Sprintf("%d (paper)", bound)
				}
				c.AddRow(name, rates[0], rates[1], paperRange)
			}
			return []Table{a, b, c}
		},
	}
}

// e12TAS compares the sifting test-and-set's contender decay with the
// conciliator's persona decay (the conclusions-section comparison).
func e12TAS() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "Sifting test-and-set vs sifting conciliator",
		Claim: "Conclusions: TAS losers drop out on contact, conciliator participants must adopt and continue; decay rates coincide round by round",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			trials := p.trials(20, 50)
			n := 256
			if p.Quick {
				n = 32
			}
			rounds := stats.CeilLogLog(n) + 3

			tbl := Table{
				ID:      "E12",
				Title:   fmt.Sprintf("contenders (TAS) vs distinct personae (Algorithm 2), n=%d", n),
				Columns: []string{"round", "TAS contenders (mean)", "Alg 2 distinct personae (mean)", "bound x_i + 1"},
				Notes: []string{
					"Both protocols use the same tuned write probabilities; their " +
						"survivor curves track each other and the x_i bound, which " +
						"is the structural connection the paper draws to " +
						"Alistarh-Aspnes.",
					"One TAS winner always remains and exactly one process wins " +
						"(asserted on every trial).",
				},
			}
			tasSums := make([]float64, rounds+1)
			concSums := make([]float64, rounds)
			var mu sync.Mutex
			p.forEachTrial(p.Seed+15, trials, func(t int, s trialSeeds) {
				ts := tas.New(n, tas.Config{Rounds: rounds})
				wins, fin, _, err := sim.Collect(sched.NewRandom(n, xrand.New(s.sched)), sim.Config{AlgSeed: s.alg}, func(pr *sim.Proc) bool {
					return ts.Acquire(pr)
				})
				if err != nil {
					panic(err)
				}
				winners := 0
				for i := range wins {
					if fin[i] && wins[i] {
						winners++
					}
				}
				if winners != 1 {
					panic(fmt.Sprintf("tas: %d winners", winners))
				}

				c := conciliator.NewSifter[int](n, conciliator.SifterConfig{Rounds: rounds, TrackSurvivors: true})
				inputs := distinctInputs(n)
				mustRun(n, s, func(pr *sim.Proc) int {
					return c.Conciliate(pr, inputs[pr.ID()])
				})

				entered := ts.ContendersPerRound()
				surv := c.SurvivorsPerRound()
				mu.Lock()
				for i := 0; i <= rounds && i < len(entered); i++ {
					tasSums[i] += float64(entered[i])
				}
				for i := 0; i < rounds && i < len(surv); i++ {
					concSums[i] += float64(surv[i])
				}
				mu.Unlock()
			})
			for i := 0; i < rounds; i++ {
				tbl.AddRow(i+1,
					tasSums[i+1]/float64(trials),
					concSums[i]/float64(trials),
					stats.SifterDecayBound(n, i+1)+1)
			}
			return []Table{tbl}
		},
	}
}
