package experiment

import (
	"fmt"
	"sync"

	"github.com/oblivious-consensus/conciliator/internal/consensus"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/stats"
)

// e8Consensus measures the three corollaries end to end: full consensus
// built from each conciliator, with the CIL-only construction as the
// pre-paper baseline.
func e8Consensus() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Full consensus: expected individual steps and phases",
		Claim: "Corollaries 1-3: O(log* n) (snapshot), O(log log n + AC) (register), same + O(n) total (linear); baseline Theta(n)",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			trials := p.trials(10, 25)
			nsweep := p.ns([]int{8, 32}, []int{8, 32, 128, 512})

			protocols := []struct {
				name string
				mk   func(n int) *consensus.Protocol[int]
			}{
				{name: "snapshot (Cor 1)", mk: consensus.NewSnapshot[int]},
				{name: "register (Cor 2)", mk: consensus.NewRegister[int]},
				{name: "linear (Cor 3)", mk: consensus.NewLinear[int]},
				{name: "cil-baseline", mk: consensus.NewCILBaseline[int]},
			}

			steps := Table{
				ID:      "E8a",
				Title:   "mean steps per process (id-consensus, uniform random adversary)",
				Columns: []string{"n", "snapshot (Cor 1)", "register (Cor 2)", "linear (Cor 3)", "cil-baseline"},
				Notes: []string{
					"Mean per-process cost is near-flat for every construction " +
						"under a uniform schedule — including the baseline, whose " +
						"4n expected spin iterations are spread over n processes. " +
						"The baseline's weakness is its schedule-dependence, " +
						"exposed in E8d. Agreement and validity are asserted on " +
						"every trial.",
				},
			}
			phases := Table{
				ID:      "E8b",
				Title:   "mean phases until commit",
				Columns: []string{"n", "snapshot (Cor 1)", "register (Cor 2)", "linear (Cor 3)", "cil-baseline"},
				Notes:   []string{"Expected phases is O(1) for all constructions."},
			}
			total := Table{
				ID:      "E8c",
				Title:   "mean of worst-case individual steps (uniform random adversary)",
				Columns: []string{"n", "snapshot (Cor 1)", "register (Cor 2)", "linear (Cor 3)", "cil-baseline"},
				Notes: []string{
					"The slowest process per execution, averaged over trials. " +
						"Under a uniform schedule even the baseline looks cheap — " +
						"the 4n spin iterations are spread over n processes. The " +
						"adversary-sensitivity table E8d is where the baseline " +
						"loses.",
				},
			}
			skew := Table{
				ID:      "E8d",
				Title:   "mean of worst-case individual steps (favored-process adversary)",
				Columns: []string{"n", "snapshot (Cor 1)", "register (Cor 2)", "linear (Cor 3)", "cil-baseline"},
				Notes: []string{
					"A skewed oblivious schedule hands every other slot to one " +
						"favored process. The paper constructions have schedule-" +
						"independent per-process step bounds, so their columns " +
						"match E8c; the CIL baseline's favored process must spin " +
						"through Theta(n) read iterations alone before anyone " +
						"proposes — the reason plain CIL does not give sublinear " +
						"individual-step consensus and Algorithm 3's embedding is " +
						"needed.",
				},
			}

			for _, n := range nsweep {
				stepCells := []any{n}
				phaseCells := []any{n}
				totalCells := []any{n}
				skewCells := []any{n}
				for pi, proto := range protocols {
					var (
						mu         sync.Mutex
						sumSteps   float64
						sumPhases  float64
						sumTotal   float64
						sumSkewMax float64
					)
					p.forEachTrial(p.Seed+9+uint64(pi), trials, func(t int, s trialSeeds) {
						c := proto.mk(n)
						inputs := distinctInputs(n)
						outs, fin, res := mustRun(n, s, func(pr *sim.Proc) int {
							return c.Propose(pr, inputs[pr.ID()])
						})
						if !agree(outs, fin) {
							panic(fmt.Sprintf("consensus %s violated agreement (n=%d trial=%d)", proto.name, n, t))
						}

						// Same protocol under the favored-process oblivious
						// schedule (fresh object: single-use).
						cSkew := proto.mk(n)
						srcSkew := sched.NewFavored(n)
						outsS, finS, resS, err := sim.Collect(srcSkew, sim.Config{AlgSeed: s.alg}, func(pr *sim.Proc) int {
							return cSkew.Propose(pr, inputs[pr.ID()])
						})
						if err != nil {
							panic(err)
						}
						if !agree(outsS, finS) {
							panic(fmt.Sprintf("consensus %s violated agreement under skew (n=%d trial=%d)", proto.name, n, t))
						}

						mu.Lock()
						sumSteps += float64(res.TotalSteps) / float64(n)
						sumPhases += c.MeanPhases()
						sumTotal += float64(res.MaxSteps())
						sumSkewMax += float64(resS.MaxSteps())
						mu.Unlock()
					})
					stepCells = append(stepCells, sumSteps/float64(trials))
					phaseCells = append(phaseCells, sumPhases/float64(trials))
					totalCells = append(totalCells, sumTotal/float64(trials))
					skewCells = append(skewCells, sumSkewMax/float64(trials))
				}
				steps.AddRow(stepCells...)
				phases.AddRow(phaseCells...)
				total.AddRow(totalCells...)
				skew.AddRow(skewCells...)
			}

			// Annotate growth exponents (slope of log steps vs log n) for
			// both the uniform and the skew-adversary tables.
			steps.Notes = append(steps.Notes, growthNote(steps, nsweep))
			skew.Notes = append(skew.Notes, growthNote(skew, nsweep))
			return []Table{steps, phases, total, skew}
		},
	}
}

// growthNote summarizes the growth exponents of the per-process step
// columns (slope of log steps vs log n): ~0 means constant, ~1 linear.
func growthNote(tbl Table, nsweep []int) string {
	if len(tbl.Rows) < 2 {
		return ""
	}
	xs := make([]float64, len(nsweep))
	for i, n := range nsweep {
		xs[i] = stats.Log2(float64(n))
	}
	note := "Growth exponents (slope of log2 steps vs log2 n):"
	for col := 1; col < len(tbl.Columns); col++ {
		ys := make([]float64, len(tbl.Rows))
		for r, row := range tbl.Rows {
			var v float64
			fmt.Sscanf(row[col], "%g", &v)
			ys[r] = stats.Log2(v)
		}
		_, b := stats.LinearFit(xs, ys)
		note += fmt.Sprintf(" %s=%.2f;", tbl.Columns[col], b)
	}
	return note
}
