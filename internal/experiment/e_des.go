package experiment

import (
	"fmt"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/des"
	"github.com/oblivious-consensus/conciliator/internal/stats"
)

// desTrialSet is one (n, protocol) cell of the E18 sweep: per-trial
// results in trial order plus the pooled per-process step sample.
type desTrialSet struct {
	results []des.Result
	steps   []float64
}

// runDESCell runs `trials` independent DES trials of one configuration,
// in trial-seed order, parallelized like every other experiment (each
// trial is itself single-threaded; workers just spread trials over
// cores).
func runDESCell(p Params, cfg des.Config, trials int, seedOff uint64) desTrialSet {
	set := desTrialSet{results: make([]des.Result, trials)}
	p.forEachTrial(p.Seed+seedOff, trials, func(t int, s trialSeeds) {
		c := cfg
		c.Seed = s.alg
		res, err := des.Run(c)
		if err != nil {
			panic(fmt.Sprintf("experiment: DES run failed: %v", err))
		}
		set.results[t] = res
	})
	for _, r := range set.results {
		for _, s := range r.Steps {
			set.steps = append(set.steps, float64(s))
		}
	}
	return set
}

func (s desTrialSet) maxPhases() int {
	m := 0
	for _, r := range s.results {
		if r.Phases > m {
			m = r.Phases
		}
	}
	return m
}

func (s desTrialSet) violations() int {
	v := 0
	for _, r := range s.results {
		v += len(r.Violations)
	}
	return v
}

func (s desTrialSet) allDecided() bool {
	for _, r := range s.results {
		if !r.AllDecided {
			return false
		}
	}
	return true
}

// qci renders a QuantileCI triple as "v [lo, hi]".
func qci(xs []float64, q float64) string {
	v, lo, hi := stats.QuantileCI(xs, q)
	return fmt.Sprintf("%s [%s, %s]", trimFloat(v), trimFloat(lo), trimFloat(hi))
}

// e18DES is the message-passing discrete-event sweep: the steps-vs-n
// curve at n far beyond the controlled simulator's reach, where the
// O(log log n) tuned sifter separates from the O(log n) constant-p
// baseline, plus quantile tables and network-adversity scenarios.
func e18DES() Experiment {
	return Experiment{
		ID:    "E18",
		Title: "Message-passing DES at n up to 100k: log log n vs log n individual work",
		Claim: "Theorem 2 / Section 4: O(log log n) expected individual work per phase, vs Theta(log n) for the constant-p sifter and O(log* n) for Algorithm 1 (footnote 1, max registers)",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			trials := p.trials(3, 5)
			nsweep := p.ns([]int{256, 1024}, []int{1000, 10000, 100000})
			protocols := des.Protocols()

			curve := Table{
				ID:      "E18a",
				Title:   "steps per process vs n (message-passing DES, exp latency 1ms)",
				Columns: []string{"n", "protocol", "rounds/phase", "steps/proc", "predicted/phase", "phases", "all decided", "violations"},
				Notes: []string{
					"One step = one shared-memory operation emulated as a request/reply " +
						"round trip to the memory server. predicted/phase is the protocol's " +
						"per-phase step bound (conciliator rounds x ops/round + 5 adopt-commit " +
						"steps); extra phases repeat it. The tuned sifter's round count grows " +
						"like log log n, the constant-p sifter's like log n, priority-max's " +
						"like log* n — the separation the controlled simulator could not reach.",
				},
			}
			quant := Table{
				ID:      "E18b",
				Title:   "per-process step quantiles with order-statistic 95% CIs",
				Columns: []string{"n", "protocol", "p50", "p90", "p99", "max"},
				Notes: []string{
					"Quantiles of the per-process step counts pooled across trials; " +
						"[lo, hi] are distribution-free order-statistic confidence bounds " +
						"(stats.QuantileCI). Tight or degenerate intervals are expected: in a " +
						"clean phase every process performs the same bounded operation " +
						"sequence, so spread only appears when adopt-commit forces extra phases.",
				},
			}
			var cell uint64
			for _, n := range nsweep {
				for _, protocol := range protocols {
					cell++
					set := runDESCell(p, des.Config{N: n, Protocol: protocol}, trials, 1800+cell)
					r0 := set.results[0]
					opsPerRound := 1
					if protocol == des.ProtoPriorityMax {
						opsPerRound = 2
					}
					predicted := r0.Rounds*opsPerRound + 5
					curve.AddRow(n, protocol, r0.Rounds,
						stats.Summarize(set.steps).String(),
						predicted, set.maxPhases(),
						fmt.Sprintf("%v", set.allDecided()), set.violations())
					quant.AddRow(n, protocol,
						qci(set.steps, 0.5), qci(set.steps, 0.9), qci(set.steps, 0.99),
						trimFloat(stats.Summarize(set.steps).Max))
				}
			}

			advN := nsweep[len(nsweep)-2] // mid n: 10k full, 256 quick
			adversity := Table{
				ID:      "E18c",
				Title:   fmt.Sprintf("network adversity at n=%d (sifter)", advN),
				Columns: []string{"scenario", "steps/proc", "virtual ms", "retransmits", "dropped", "blocked", "phases", "all decided", "violations"},
				Notes: []string{
					"Loss and partitions live below the exactly-once RPC shim, so they " +
						"stretch virtual time and message counts but never the safety " +
						"properties: the monitors must stay quiet in every scenario. The " +
						"partition isolates the top 30% of processes for [5ms, 25ms).",
				},
			}
			partition := des.Partition{From: 5 * time.Millisecond, Until: 25 * time.Millisecond, Frac: 0.3}
			scenarios := []struct {
				name string
				net  des.NetConfig
			}{
				{"exp latency (baseline)", des.NetConfig{}},
				{"uniform latency", des.NetConfig{Latency: des.LatencyDist{Kind: des.LatUniform, Mean: time.Millisecond}}},
				{"loss 0.2", des.NetConfig{Loss: 0.2}},
				{"partition 30% 5-25ms", des.NetConfig{Partitions: []des.Partition{partition}}},
				{"loss 0.2 + partition", des.NetConfig{Loss: 0.2, Partitions: []des.Partition{partition}}},
			}
			for i, sc := range scenarios {
				set := runDESCell(p, des.Config{N: advN, Protocol: des.ProtoSifter, Net: sc.net}, trials, 1850+uint64(i))
				var vtimes []float64
				var retrans, dropped, blocked int64
				for _, r := range set.results {
					vtimes = append(vtimes, float64(r.VirtualTime)/float64(time.Millisecond))
					retrans += r.Retransmits
					dropped += r.MsgsDropped
					blocked += r.MsgsBlocked
				}
				adversity.AddRow(sc.name,
					stats.Summarize(set.steps).String(),
					stats.Summarize(vtimes).String(),
					retrans, dropped, blocked, set.maxPhases(),
					fmt.Sprintf("%v", set.allDecided()), set.violations())
			}

			return []Table{curve, quant, adversity}
		},
	}
}
