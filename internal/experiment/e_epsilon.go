package experiment

import (
	"fmt"
	"sync"

	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/stats"
)

// e16EpsilonNecessity measures the epsilon side of the bounds: the paper
// notes (after Theorem 2) that the log(1/eps) term is necessary by the
// Attiya–Censor-Hillel lower bound, so rounds must grow linearly in
// log(1/eps) while the realized disagreement probability tracks eps.
func e16EpsilonNecessity() Experiment {
	return Experiment{
		ID:    "E16",
		Title: "Epsilon dependence: rounds grow as log(1/eps), failures fall as eps",
		Claim: "Theorems 1-2 + Attiya–Censor-Hillel lower bound: Theta(log 1/eps) extra rounds buy disagreement probability eps, and that dependence is necessary",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			trials := p.trials(60, 150)
			n := 64
			if p.Quick {
				n = 16
			}
			epsilons := []float64{0.5, 0.25, 0.125, 1.0 / 16, 1.0 / 64, 1.0 / 256}
			if p.Quick {
				epsilons = []float64{0.5, 0.125, 1.0 / 64}
			}

			tbl := Table{
				ID:    "E16",
				Title: fmt.Sprintf("Algorithm 2 rounds and failures vs epsilon (n=%d)", n),
				Columns: []string{
					"epsilon", "log2(1/eps)", "rounds R",
					"disagreement rate (measured)", "allowed (eps)",
				},
				Notes: []string{
					"Rounds grow linearly in log(1/eps) (slope about " +
						"1/log2(4/3) = 2.41 per bit); measured disagreement stays " +
						"at or below eps. The lower bound says no protocol can " +
						"avoid paying rounds for epsilon — only the loglog n part " +
						"is potentially improvable (the paper's open question).",
				},
			}
			var (
				xs, ys []float64
			)
			for ei, eps := range epsilons {
				eps := eps
				var (
					mu       sync.Mutex
					disagree int
				)
				p.forEachTrial(p.Seed+19+uint64(ei), trials, func(t int, s trialSeeds) {
					c := conciliator.NewSifter[int](n, conciliator.SifterConfig{Epsilon: eps})
					inputs := distinctInputs(n)
					outs, fin, _ := mustRun(n, s, func(pr *sim.Proc) int {
						return c.Conciliate(pr, inputs[pr.ID()])
					})
					mu.Lock()
					if !agree(outs, fin) {
						disagree++
					}
					mu.Unlock()
				})
				rate, ci := stats.Proportion(disagree, trials)
				rounds := conciliator.SifterRounds(n, eps)
				bits := stats.Log2(1 / eps)
				xs = append(xs, bits)
				ys = append(ys, float64(rounds))
				tbl.AddRow(eps, bits, rounds, pct(rate, ci), eps)
			}
			_, slope := stats.LinearFit(xs, ys)
			tbl.Notes = append(tbl.Notes,
				fmt.Sprintf("Fitted rounds-per-bit slope: %.2f (theory: 1/log2(4/3) = 2.41).", slope))
			return []Table{tbl}
		},
	}
}
