package experiment

import (
	"fmt"

	"github.com/oblivious-consensus/conciliator/internal/attack/search"
)

// e19AttackSearch runs the optimizing-but-oblivious adversary search
// (internal/attack/search) against both full consensus stacks and tables
// what the best schedule it finds actually costs, next to the friendly
// baselines, the coin-aware white-box graft, and the paper's per-phase
// step bound. The point of the table is the separation: searching over
// fixed schedules — the strongest thing an oblivious adversary can do —
// moves the needle only modestly, while the same schedule family plus
// coin knowledge (the white-box graft) forces strictly more work. That
// is the paper's adversary model made quantitative.
func e19AttackSearch() Experiment {
	return Experiment{
		ID:    "E19",
		Title: "Optimizing oblivious adversary: searched schedules vs the coin-aware white-box attack",
		Claim: "Section 1.1: the adversary quantifier ranges over fixed schedules; even an optimized one leaves expected phases O(1), unlike a coin-aware adversary",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			n, budget, pop, evalTrials, shrink := 8, 64, 8, 4, 24
			if p.Quick {
				n, budget, pop, evalTrials, shrink = 4, 16, 6, 2, 8
			}
			confirm := p.trials(6, 16)

			tbl := Table{
				ID:    "E19",
				Title: fmt.Sprintf("Best-found oblivious schedules vs baselines and the white-box adversary (n=%d, budget=%d evaluations)", n, budget),
				Columns: []string{
					"protocol", "round-robin steps", "random steps",
					"best oblivious steps", "white-box steps",
					"phases best/wb", "per-phase bound",
				},
				Notes: []string{
					"Steps are mean max individual steps to decision over " +
						"fresh confirmation seeds, not the seeds the search " +
						"optimized on. The white-box column grafts the phase-1 " +
						"coin-aware freeze (internal/attack) onto the winner's " +
						"own schedule, so it can do everything the winner does " +
						"plus read the coins: best oblivious <= white-box is " +
						"the model separation, pinned by tests.",
					"The per-phase bound column is the analytic worst-case " +
						"individual steps of one phase (conciliator + " +
						"adopt-commit); an oblivious adversary only gets O(1) " +
						"expected phases no matter how its schedule was chosen.",
				},
			}
			for _, protocol := range search.Protocols() {
				res, err := search.Search(search.Config{
					Protocol:      protocol,
					N:             n,
					Seed:          p.Seed + 19,
					Budget:        budget,
					Pop:           pop,
					EvalTrials:    evalTrials,
					ConfirmTrials: confirm,
					ShrinkBudget:  shrink,
					Parallelism:   p.Parallelism,
				})
				if err != nil {
					panic(fmt.Sprintf("experiment: attack search failed: %v", err))
				}
				bound, err := search.PerPhaseBound(protocol, n)
				if err != nil {
					panic(fmt.Sprintf("experiment: %v", err))
				}
				tbl.AddRow(
					protocol,
					res.Baselines["round-robin"].StepsMean,
					res.Baselines["random"].StepsMean,
					res.Confirm.StepsMean,
					res.WhiteBox.StepsMean,
					fmt.Sprintf("%.1f/%.1f", res.Confirm.PhasesMean, res.WhiteBox.PhasesMean),
					bound,
				)
			}
			return []Table{tbl}
		},
	}
}
