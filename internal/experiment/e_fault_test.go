package experiment

import (
	"encoding/json"
	"reflect"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/fault"
	"github.com/oblivious-consensus/conciliator/internal/sched"
)

// TestFaultTrialAtomicCellsQuiet is the acceptance criterion for the
// monitors' soundness: under atomic register semantics every process
// fault (stutter, stall, crash-recovery with amnesia) is within the
// model the algorithms tolerate, so the safety monitors must never fire
// — for any schedule family, on either workload.
func TestFaultTrialAtomicCellsQuiet(t *testing.T) {
	for _, pf := range []fault.ProcFault{fault.ProcNone, fault.ProcStutter, fault.ProcStall, fault.ProcCrashRecover} {
		for _, w := range FaultWorkloads() {
			for _, kind := range sched.Kinds() {
				for seed := uint64(1); seed <= 3; seed++ {
					schedule, err := fault.Plan{N: 6, Seed: seed, Semantics: fault.SemAtomic, Proc: pf}.Generate()
					if err != nil {
						t.Fatal(err)
					}
					res := RunFaultTrial(FaultTrialSpec{
						N: 6, SchedKind: kind, SchedSeed: seed * 31, AlgSeed: seed * 17,
						Workload: w, Fault: schedule,
					})
					if len(res.Violations) != 0 {
						t.Errorf("atomic cell %v/%v/%v seed %d violated: %v",
							pf, kind, w, seed, res.Violations)
					}
				}
			}
		}
	}
}

func TestFaultTrialDeterministic(t *testing.T) {
	schedule, err := fault.Plan{N: 5, Seed: 3, Semantics: fault.SemSafe, Proc: fault.ProcCrashRecover}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	spec := FaultTrialSpec{N: 5, SchedKind: sched.KindRandom, SchedSeed: 11, AlgSeed: 13,
		Workload: WorkloadConsensus, Fault: schedule}
	a, b := RunFaultTrial(spec), RunFaultTrial(spec)
	if !reflect.DeepEqual(a.Violations, b.Violations) {
		t.Errorf("violations diverged:\n%v\nvs\n%v", a.Violations, b.Violations)
	}
	if a.Res.TotalSteps != b.Res.TotalSteps || a.Res.Restarts != b.Res.Restarts || a.Res.Faults != b.Res.Faults {
		t.Errorf("results diverged: %+v vs %+v", a.Res, b.Res)
	}
}

func TestFaultTrialUnknownWorkload(t *testing.T) {
	schedule, err := fault.Plan{N: 2, Seed: 1}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	res := RunFaultTrial(FaultTrialSpec{N: 2, SchedKind: sched.KindRoundRobin, Workload: "nope", Fault: schedule})
	if len(res.Violations) == 0 || res.Violations[0].Monitor != "panic" {
		t.Errorf("unknown workload not reported: %v", res.Violations)
	}
}

// TestFaultSweepShrinksAndReplays drives the whole loop on a weakened
// cell known to violate: sweep finds violations, the shrinker reduces
// them to small artifacts, the artifacts save to disk, load back, and
// replay to the same violations.
func TestFaultSweepShrinksAndReplays(t *testing.T) {
	dir := t.TempDir()
	results := RunFaultSweep(FaultSweepConfig{
		Params:    Params{Parallelism: 1},
		Trials:    12,
		Semantics: []fault.Semantics{fault.SemSafe},
		Procs:     []fault.ProcFault{fault.ProcNone, fault.ProcStutter},
		Kinds:     []sched.Kind{sched.KindRoundRobin, sched.KindRandom},
		Workloads: []string{WorkloadMaxReg},
		Shrink:    2048,
		ReproDir:  dir,
	})
	var repros []*fault.Repro
	violated := 0
	for _, cr := range results {
		violated += cr.Violated
		repros = append(repros, cr.Repros...)
	}
	if violated == 0 {
		t.Fatal("safe-register maxreg cells produced no violations: monitors are vacuous or faults are not injected")
	}
	if len(repros) == 0 {
		t.Fatal("violations found but no repros shrunk")
	}
	for _, r := range repros {
		if r.Fault.Len() > 64 {
			t.Errorf("shrunk schedule still has %d events", r.Fault.Len())
		}
		if r.SavedPath == "" {
			t.Fatal("repro not saved")
		}
		loaded, err := fault.LoadRepro(r.SavedPath)
		if err != nil {
			t.Fatalf("loading %s: %v", r.SavedPath, err)
		}
		res, err := ReplayRepro(loaded)
		if err != nil {
			t.Fatalf("replaying %s: %v", r.SavedPath, err)
		}
		if !reflect.DeepEqual(res.Violations, loaded.Violations) {
			t.Errorf("replay of %s diverged from recorded violations:\n%v\nvs\n%v",
				r.SavedPath, res.Violations, loaded.Violations)
		}
	}
}

// TestFaultSweepParallelismInvariant: trial results must not depend on
// the worker count, or repro artifacts would not be reproducible from
// the sweep's own seeds.
func TestFaultSweepParallelismInvariant(t *testing.T) {
	cfg := FaultSweepConfig{
		Trials:    8,
		Semantics: []fault.Semantics{fault.SemRegular},
		Procs:     []fault.ProcFault{fault.ProcStall},
		Kinds:     []sched.Kind{sched.KindRandom},
	}
	summarize := func(parallelism int) string {
		c := cfg
		c.Params = Params{Parallelism: parallelism}
		data, err := json.Marshal(RunFaultSweep(c))
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if one, many := summarize(1), summarize(7); one != many {
		t.Errorf("sweep results differ across parallelism:\n%s\nvs\n%s", one, many)
	}
}

func TestReplayReproRejectsUnknownNames(t *testing.T) {
	schedule, err := fault.Plan{N: 2, Seed: 1, Semantics: fault.SemSafe}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	base := fault.Repro{
		Schema: fault.SchemaRepro, N: 2, Sched: "round-robin", Workload: WorkloadMaxReg,
		Fault: schedule, Violations: []fault.Violation{{Monitor: "panic", Detail: "x"}},
	}
	bad := base
	bad.Sched = "warp-speed"
	if _, err := ReplayRepro(&bad); err == nil {
		t.Error("unknown sched kind accepted")
	}
	bad = base
	bad.Workload = "mystery"
	if _, err := ReplayRepro(&bad); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestE17Registered: the reduced matrix runs as a first-class
// experiment, so -all and the nightly suite cover it.
func TestE17Registered(t *testing.T) {
	e, ok := ByID("E17")
	if !ok {
		t.Fatal("E17 not registered")
	}
	tables := e.Run(Params{Quick: true, Trials: 2})
	if len(tables) != 1 || tables[0].ID != "E17" {
		t.Fatalf("tables = %+v", tables)
	}
	// quick mode: 3 semantics x 4 proc faults x 2 kinds x 2 workloads.
	if got := len(tables[0].Rows); got != 48 {
		t.Errorf("E17 quick rows = %d, want 48", got)
	}
}
