package experiment

import (
	"fmt"
	"sync"

	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/stats"
)

// e1PriorityDecay measures the per-round survivor decay of Algorithm 1
// against the Lemma 1 bound E[X_{i+1}] <= min(ln(X_i+1), X_i/2).
func e1PriorityDecay() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Algorithm 1 survivor decay per round",
		Claim: "Lemma 1: E[X_{i+1} | X_i] <= min(ln(X_i+1), X_i/2)",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			trials := p.trials(20, 60)
			nsweep := p.ns([]int{16, 64}, []int{16, 64, 256, 1024})
			const rounds = 6

			tbl := Table{
				ID:      "E1",
				Title:   "mean excess personae X_i after round i (Algorithm 1)",
				Columns: []string{"n", "round i", "mean X_i", "Lemma 1 bound f^(i)(n-1)"},
				Notes: []string{
					"Measured means must lie below the iterated Lemma 1 bound " +
						"(up to sampling noise); the bound column iterates " +
						"f(x) = min(ln(x+1), x/2) from X_0 = n-1.",
				},
			}
			for _, n := range nsweep {
				sums := make([]float64, rounds)
				var mu sync.Mutex
				p.forEachTrial(p.Seed+1, trials, func(t int, s trialSeeds) {
					c := conciliator.NewPriority[int](n, conciliator.PriorityConfig{
						Rounds:         rounds,
						TrackSurvivors: true,
					})
					inputs := distinctInputs(n)
					mustRun(n, s, func(pr *sim.Proc) int {
						return c.Conciliate(pr, inputs[pr.ID()])
					})
					surv := c.SurvivorsPerRound()
					mu.Lock()
					for i := 0; i < rounds && i < len(surv); i++ {
						sums[i] += float64(surv[i] - 1)
					}
					mu.Unlock()
				})
				for i := 0; i < rounds; i++ {
					tbl.AddRow(n, i+1, sums[i]/float64(trials), stats.PriorityDecayBound(n, i+1))
				}
			}
			return []Table{tbl}
		},
	}
}

// e2PriorityAgreement measures Theorem 1's agreement probability 1-eps.
func e2PriorityAgreement() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Algorithm 1 agreement probability vs epsilon",
		Claim: "Theorem 1: agreement with probability >= 1-eps after log* n + ceil(log 1/eps) + 1 rounds",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			trials := p.trials(40, 180)
			n := 64
			if p.Quick {
				n = 16
			}
			epsilons := []float64{0.5, 0.25, 1.0 / 16, 1.0 / 256}

			tbl := Table{
				ID:      "E2",
				Title:   fmt.Sprintf("agreement rate of Algorithm 1 (n=%d, distinct inputs)", n),
				Columns: []string{"epsilon", "rounds R", "agreement rate", "paper floor 1-eps"},
				Notes: []string{
					"The rate column must be at or above the floor. It is usually " +
						"far above it: the Lemma 1 analysis is pessimistic (it charges " +
						"any duplicate priority as a failure and bounds left-to-right " +
						"maxima loosely).",
				},
			}
			for _, eps := range epsilons {
				agreed := make([]bool, trials)
				p.forEachTrial(p.Seed+2+uint64(eps*1024), trials, func(t int, s trialSeeds) {
					c := conciliator.NewPriority[int](n, conciliator.PriorityConfig{Epsilon: eps})
					inputs := distinctInputs(n)
					outs, fin, _ := mustRun(n, s, func(pr *sim.Proc) int {
						return c.Conciliate(pr, inputs[pr.ID()])
					})
					agreed[t] = agree(outs, fin)
				})
				hits := 0
				for _, a := range agreed {
					if a {
						hits++
					}
				}
				rate, ci := stats.Proportion(hits, trials)
				tbl.AddRow(eps, conciliator.PriorityRounds(n, eps), pct(rate, ci), 1-eps)
			}
			return []Table{tbl}
		},
	}
}

// e3PrioritySteps measures Theorem 1's O(log* n + log 1/eps) individual
// step complexity.
func e3PrioritySteps() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Algorithm 1 individual step complexity scaling",
		Claim: "Theorem 1: O(log* n + log(1/eps)) steps per process (2 per round)",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			nsweep := p.ns([]int{4, 64, 1024}, []int{4, 16, 256, 4096, 16384})
			const eps = 0.5

			tbl := Table{
				ID:      "E3",
				Title:   "per-process steps of Algorithm 1 (eps = 1/2)",
				Columns: []string{"n", "log* n", "rounds R", "steps/process (measured)", "2R (predicted)"},
				Notes: []string{
					"Steps per process are deterministic (2 per round): the point " +
						"of the sweep is the log* n growth — 16x more processes cost " +
						"at most 2 more steps.",
				},
			}
			for _, n := range nsweep {
				c := conciliator.NewPriority[int](n, conciliator.PriorityConfig{Epsilon: eps})
				inputs := distinctInputs(n)
				seeds := seedsFor(p.Seed+3, 1)
				_, _, res := mustRun(n, seeds[0], func(pr *sim.Proc) int {
					return c.Conciliate(pr, inputs[pr.ID()])
				})
				tbl.AddRow(n, stats.LogStar(float64(n)), c.Rounds(), float64(res.MaxSteps()), 2*c.Rounds())
			}
			return []Table{tbl}
		},
	}
}
