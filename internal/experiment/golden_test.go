package experiment

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden experiment tables")

// TestGoldenTables pins the rendered output of one small experiment per
// protocol family — priority conciliator, sifter, embedded CIL, and full
// consensus — at the default master seed. Experiments promise to be
// deterministic in (Seed, Trials) and byte-identical for any
// -parallel value; these goldens turn that promise into a regression
// test that catches any accidental reseeding, iteration-order change, or
// table-format drift. Regenerate intentionally with:
//
//	go test ./internal/experiment -run TestGoldenTables -update
func TestGoldenTables(t *testing.T) {
	cases := []struct {
		id       string
		parallel int // prove parallelism-independence by mixing values
	}{
		{id: "E1", parallel: 1},
		{id: "E6", parallel: 3},
		{id: "E7", parallel: 2},
		{id: "E8", parallel: 4},
		{id: "E17", parallel: 5}, // fault sweep: faulted runs must replay byte-identically too
		{id: "E18", parallel: 3}, // DES: virtual-time runs must replay byte-identically
		{id: "E19", parallel: 2}, // attack search: the whole evolutionary loop must replay byte-identically
		{id: "E20", parallel: 4}, // flat-engine Monte Carlo: worker-count independence of the streaming aggregate
		{id: "E21", parallel: 3}, // chaos matrix: crash/restart schedules must replay byte-identically
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			t.Parallel()
			e, ok := ByID(tc.id)
			if !ok {
				t.Fatalf("unknown experiment %s", tc.id)
			}
			var b strings.Builder
			for _, tbl := range e.Run(Params{Quick: true, Trials: 8, Parallelism: tc.parallel}) {
				fmt.Fprintln(&b, tbl.Text())
			}
			got := b.String()
			path := filepath.Join("testdata", "golden_"+strings.ToLower(tc.id)+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output drifted from golden file %s.\ngot:\n%s\nwant:\n%s", tc.id, path, got, want)
			}
		})
	}
}
