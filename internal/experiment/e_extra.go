package experiment

import (
	"fmt"
	"math"
	"sync"

	"github.com/oblivious-consensus/conciliator/internal/attack"
	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/stats"
)

// e13Multiplicity measures how the round complexity tracks the number of
// *distinct inputs* m rather than the number of processes n: the paper's
// analyses start from X_0 = (distinct personae) - 1, so fewer distinct
// values should mean fewer effective rounds of work.
func e13Multiplicity() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "Distinct-input multiplicity: X_0 = m-1, not n-1",
		Claim: "Sections 2-3: the decay analyses are driven by the number of distinct personae entering each round",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			trials := p.trials(20, 60)
			n := 256
			if p.Quick {
				n = 32
			}
			ms := []int{2, 4, 16, 64, n}
			if p.Quick {
				ms = []int{2, 8, n}
			}

			tbl := Table{
				ID:      "E13",
				Title:   fmt.Sprintf("Algorithm 2 survivors after rounds 1 and 2 by input multiplicity (n=%d)", n),
				Columns: []string{"distinct inputs m", "mean X_1", "mean X_2", "bound from m: 2*sqrt(m-1)"},
				Notes: []string{
					"Processes share only m distinct input values. Distinct " +
						"personae still start at n (each process draws its own " +
						"coins), but distinct *values* collapse at the rate driven " +
						"by the persona count; the table reports distinct values " +
						"held after each round, which is what consensus cares " +
						"about, and compares with the m-driven bound.",
				},
			}
			for _, m := range ms {
				m := m
				var (
					mu   sync.Mutex
					sum1 float64
					sum2 float64
				)
				p.forEachTrial(p.Seed+16+uint64(m), trials, func(t int, s trialSeeds) {
					c := conciliator.NewSifter[int](n, conciliator.SifterConfig{
						Rounds:         2,
						TrackSurvivors: true,
					})
					inputs := make([]int, n)
					for i := range inputs {
						inputs[i] = i % m
					}
					holders := make([][]int, 2)
					for r := range holders {
						holders[r] = make([]int, n)
					}
					mustRun(n, s, func(pr *sim.Proc) int {
						run := c.Begin(pr, inputs[pr.ID()])
						r := 0
						for !run.Done() {
							run.Step(pr)
							if r < 2 {
								holders[r][pr.ID()] = run.Persona().Value()
							}
							r++
						}
						return run.Persona().Value()
					})
					distinctAt := func(r int) int {
						set := make(map[int]struct{})
						for _, v := range holders[r] {
							set[v] = struct{}{}
						}
						return len(set)
					}
					mu.Lock()
					sum1 += float64(distinctAt(0) - 1)
					sum2 += float64(distinctAt(1) - 1)
					mu.Unlock()
				})
				bound := 2 * math.Sqrt(float64(m-1))
				tbl.AddRow(m, sum1/float64(trials), sum2/float64(trials), bound)
			}
			return []Table{tbl}
		},
	}
}

// e14Adversary is the negative control for the oblivious-adversary
// assumption: a coin-aware adversary (it knows the algorithm seed)
// schedules all readers before all writers in every sifting round,
// freezing the persona set.
func e14Adversary() Experiment {
	return Experiment{
		ID:    "E14",
		Title: "Strength of the adversary: coin-aware schedules defeat Algorithm 2",
		Claim: "Section 5: the algorithms require (at least) a content-oblivious weak adversary; leaking the coins to the adversary breaks them",
		Run: func(p Params) []Table {
			p = p.withDefaults()
			trials := p.trials(20, 60)
			n := 64
			if p.Quick {
				n = 16
			}

			tbl := Table{
				ID:      "E14",
				Title:   fmt.Sprintf("Algorithm 2 under oblivious vs coin-aware adversaries (n=%d)", n),
				Columns: []string{"adversary", "agreement rate", "mean distinct outputs"},
				Notes: []string{
					"The bit-leak adversary schedules every round's readers " +
						"before its writers, so no reader ever sees a non-empty " +
						"register and every process keeps its original persona: " +
						"agreement probability 0, all n values survive. The " +
						"writers-first adversary is the benign mirror image. The " +
						"oblivious adversary cannot tell readers from writers, " +
						"which is exactly why Theorem 2's bound stands.",
				},
			}
			kinds := []string{"oblivious random", "coin-aware readers-first (attack)", "coin-aware writers-first"}
			for ki, kind := range kinds {
				ki := ki
				var (
					mu          sync.Mutex
					agreedCount int
					distinctSum float64
				)
				p.forEachTrial(p.Seed+17+uint64(ki), trials, func(t int, s trialSeeds) {
					c := conciliator.NewSifter[int](n, conciliator.SifterConfig{})
					inputs := distinctInputs(n)
					body := func(pr *sim.Proc) int {
						return c.Conciliate(pr, inputs[pr.ID()])
					}
					var (
						outs []int
						fin  []bool
					)
					switch ki {
					case 0:
						outs, fin, _ = mustRun(n, s, body)
					case 1:
						src := attack.SifterBitLeakSchedule(n, s.alg, 0.5)
						var err error
						outs, fin, _, err = sim.Collect(src, sim.Config{AlgSeed: s.alg}, body)
						if err != nil {
							panic(err)
						}
					default:
						src := attack.WritersFirstSchedule(n, s.alg, 0.5)
						var err error
						outs, fin, _, err = sim.Collect(src, sim.Config{AlgSeed: s.alg}, body)
						if err != nil {
							panic(err)
						}
					}
					set := make(map[int]struct{})
					for i, o := range outs {
						if fin[i] {
							set[o] = struct{}{}
						}
					}
					mu.Lock()
					if agree(outs, fin) {
						agreedCount++
					}
					distinctSum += float64(len(set))
					mu.Unlock()
				})
				rate, ci := stats.Proportion(agreedCount, trials)
				tbl.AddRow(kind, pct(rate, ci), distinctSum/float64(trials))
			}

			tbl1 := Table{
				ID:      "E14b",
				Title:   fmt.Sprintf("Algorithm 1 under oblivious vs priority-leak adversaries (n=%d)", n),
				Columns: []string{"adversary", "agreement rate", "mean distinct outputs"},
				Notes: []string{
					"The priority-leak adversary orders each round's processes " +
						"by ascending priority, update-then-scan back to back, so " +
						"every scan shows its own persona as the maximum and no " +
						"process ever adopts: the same freeze as the Algorithm 2 " +
						"attack, through a different mechanism.",
				},
			}
			for ki, kind := range []string{"oblivious random", "coin-aware priority-leak (attack)"} {
				ki := ki
				var (
					mu          sync.Mutex
					agreedCount int
					distinctSum float64
				)
				p.forEachTrial(p.Seed+23+uint64(ki), trials, func(t int, s trialSeeds) {
					c := conciliator.NewPriority[int](n, conciliator.PriorityConfig{})
					inputs := distinctInputs(n)
					body := func(pr *sim.Proc) int {
						return c.Conciliate(pr, inputs[pr.ID()])
					}
					var (
						outs []int
						fin  []bool
					)
					if ki == 0 {
						outs, fin, _ = mustRun(n, s, body)
					} else {
						src := attack.PriorityLeakSchedule(n, s.alg, 0.5)
						var err error
						outs, fin, _, err = sim.Collect(src, sim.Config{AlgSeed: s.alg}, body)
						if err != nil {
							panic(err)
						}
					}
					set := make(map[int]struct{})
					for i, o := range outs {
						if fin[i] {
							set[o] = struct{}{}
						}
					}
					mu.Lock()
					if agree(outs, fin) {
						agreedCount++
					}
					distinctSum += float64(len(set))
					mu.Unlock()
				})
				rate, ci := stats.Proportion(agreedCount, trials)
				tbl1.AddRow(kind, pct(rate, ci), distinctSum/float64(trials))
			}
			return []Table{tbl, tbl1}
		},
	}
}
