package consensus

import (
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
)

// flatConfigs is the full matrix the flat machine supports: three
// conciliators by two adopt-commit objects.
func flatConfigs() []FlatConfig {
	var cfgs []FlatConfig
	for _, conc := range []string{ConcSifter, ConcSifterHalf, ConcPriorityMax} {
		for _, ac := range []string{ACRegister, ACSnapshot} {
			cfgs = append(cfgs, FlatConfig{Conciliator: conc, AC: ac})
		}
	}
	return cfgs
}

// checkFlatVsCoroutine runs the coroutine protocol and the flat machine
// under one (configuration, schedule, seed) and requires byte-identical
// step tables, finish flags, and decisions. Returns false only via
// t.Errorf / t.Fatalf reporting.
func checkFlatVsCoroutine(t *testing.T, tag string, n int, cfg FlatConfig, src1, src2 sched.Source, algSeed uint64) {
	t.Helper()
	inputs := make([]int64, n)
	coInputs := make([]int, n)
	for i := range inputs {
		inputs[i] = int64(i % 2)
		coInputs[i] = i % 2
	}
	simCfg := sim.Config{AlgSeed: algSeed}

	proto, err := EquivalentProtocol(n, cfg)
	if err != nil {
		t.Fatalf("%s: EquivalentProtocol: %v", tag, err)
	}
	coOuts, coFin, coRes, coErr := sim.Collect(src1, simCfg, func(p *sim.Proc) int {
		return proto.Propose(p, coInputs[p.ID()])
	})
	if coErr != nil {
		t.Fatalf("%s: coroutine run failed: %v", tag, coErr)
	}

	fm, err := NewFlat(n, cfg)
	if err != nil {
		t.Fatalf("%s: NewFlat: %v", tag, err)
	}
	fm.Reset(inputs)
	flRes, flErr := sim.RunFlat(src2, fm, simCfg)
	if flErr != nil {
		t.Fatalf("%s: flat run failed: %v", tag, flErr)
	}

	if coRes.Slots != flRes.Slots || coRes.TotalSteps != flRes.TotalSteps {
		t.Fatalf("%s: slots/steps: coroutine (%d,%d) flat (%d,%d)",
			tag, coRes.Slots, coRes.TotalSteps, flRes.Slots, flRes.TotalSteps)
	}
	for pid := 0; pid < n; pid++ {
		if coRes.Steps[pid] != flRes.Steps[pid] {
			t.Errorf("%s: steps[%d] flat %d coroutine %d", tag, pid, flRes.Steps[pid], coRes.Steps[pid])
		}
		if coFin[pid] != flRes.Finished[pid] {
			t.Errorf("%s: finished[%d] flat %v coroutine %v", tag, pid, flRes.Finished[pid], coFin[pid])
		}
		if coFin[pid] {
			if int64(coOuts[pid]) != fm.Output(pid) {
				t.Errorf("%s: output[%d] flat %d coroutine %d", tag, pid, fm.Output(pid), coOuts[pid])
			}
			if !fm.Decided(pid) {
				t.Errorf("%s: finished pid %d not marked decided", tag, pid)
			}
			if fm.Phases(pid) < 1 {
				t.Errorf("%s: finished pid %d reports %d phases", tag, pid, fm.Phases(pid))
			}
		}
	}
}

// TestFlatConsensusByteIdentity pins the flat phase loop against the
// coroutine Protocol across the full conciliator x adopt-commit matrix,
// every schedule family (including crash-half), and several sizes.
func TestFlatConsensusByteIdentity(t *testing.T) {
	for _, cfg := range flatConfigs() {
		for _, n := range []int{2, 9, 24} {
			for _, kind := range sched.Kinds() {
				for seed := uint64(1); seed <= 2; seed++ {
					tag := cfg.Conciliator + "/" + cfg.AC
					checkFlatVsCoroutine(t, tag, n, cfg,
						sched.New(kind, n, seed), sched.New(kind, n, seed), 0xbead^seed)
				}
			}
		}
	}
}

// TestFlatConsensusReuse pins that Reset makes a machine and a reused
// runner byte-identical to fresh ones across back-to-back trials.
func TestFlatConsensusReuse(t *testing.T) {
	n := 12
	cfg := FlatConfig{Conciliator: ConcSifter, AC: ACRegister}
	m, err := NewFlat(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fr := sim.NewFlatRunner[*FlatConsensus]()
	var reused sim.Result
	for trial := uint64(0); trial < 5; trial++ {
		simCfg := sim.Config{AlgSeed: 100 + trial}
		m.Reset(nil)
		if err := fr.RunInto(sched.New(sched.KindRandom, n, trial), m, simCfg, &reused); err != nil {
			t.Fatalf("trial %d: reused run failed: %v", trial, err)
		}
		fresh, err := NewFlat(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		freshRes, err := sim.RunFlat(sched.New(sched.KindRandom, n, trial), fresh, simCfg)
		if err != nil {
			t.Fatalf("trial %d: fresh run failed: %v", trial, err)
		}
		if reused.Slots != freshRes.Slots || reused.TotalSteps != freshRes.TotalSteps {
			t.Fatalf("trial %d: reused (%d,%d) != fresh (%d,%d)",
				trial, reused.Slots, reused.TotalSteps, freshRes.Slots, freshRes.TotalSteps)
		}
		for pid := 0; pid < n; pid++ {
			if m.Output(pid) != fresh.Output(pid) || m.Phases(pid) != fresh.Phases(pid) {
				t.Fatalf("trial %d pid %d: reused machine drifted from fresh machine", trial, pid)
			}
		}
	}
}

// TestFlatConsensusAgreementValidity spot-checks the protocol properties
// on the flat engine directly: every finished process decides the same
// value, and that value is some process's input.
func TestFlatConsensusAgreementValidity(t *testing.T) {
	for _, cfg := range flatConfigs() {
		m, err := NewFlat(16, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fr := sim.NewFlatRunner[*FlatConsensus]()
		var res sim.Result
		for seed := uint64(0); seed < 20; seed++ {
			m.Reset(nil)
			if err := fr.RunInto(sched.New(sched.KindRandom, 16, seed), m, sim.Config{AlgSeed: seed * 31}, &res); err != nil {
				t.Fatalf("%s/%s seed %d: %v", cfg.Conciliator, cfg.AC, seed, err)
			}
			first := m.Output(0)
			for pid := 0; pid < 16; pid++ {
				if v := m.Output(pid); v != first {
					t.Fatalf("%s/%s seed %d: agreement violated: output[%d]=%d output[0]=%d",
						cfg.Conciliator, cfg.AC, seed, pid, v, first)
				}
			}
			if first != 0 && first != 1 {
				t.Fatalf("%s/%s seed %d: validity violated: decided %d", cfg.Conciliator, cfg.AC, seed, first)
			}
		}
	}
}

// TestFlatConsensusRejectsBadConfig pins the constructor error paths and
// the binary-input validation.
func TestFlatConsensusRejectsBadConfig(t *testing.T) {
	if _, err := NewFlat(4, FlatConfig{Conciliator: "nope"}); err == nil {
		t.Error("unknown conciliator accepted")
	}
	if _, err := NewFlat(4, FlatConfig{AC: "nope"}); err == nil {
		t.Error("unknown adopt-commit accepted")
	}
	m, err := NewFlat(4, FlatConfig{AC: ACRegister})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-binary input accepted by register adopt-commit machine")
		}
	}()
	m.Reset([]int64{0, 1, 2, 1})
}

// FuzzFlatVsCoroutine is the differential fuzz target of the two
// engines: any (size, configuration, schedule kind, schedule seed,
// algorithm seed) drawn by the fuzzer must produce byte-identical step
// tables and decisions.
func FuzzFlatVsCoroutine(f *testing.F) {
	f.Add(uint8(4), uint8(0), uint8(0), uint64(1), uint64(2))
	f.Add(uint8(9), uint8(3), uint8(2), uint64(7), uint64(5))
	f.Add(uint8(17), uint8(5), uint8(5), uint64(11), uint64(13))
	cfgs := flatConfigs()
	kinds := sched.Kinds()
	f.Fuzz(func(t *testing.T, nRaw, cfgRaw, kindRaw uint8, schedSeed, algSeed uint64) {
		n := 2 + int(nRaw)%31
		cfg := cfgs[int(cfgRaw)%len(cfgs)]
		kind := kinds[int(kindRaw)%len(kinds)]
		tag := cfg.Conciliator + "/" + cfg.AC
		checkFlatVsCoroutine(t, tag, n, cfg,
			sched.New(kind, n, schedSeed), sched.New(kind, n, schedSeed), algSeed)
	})
}
