package consensus

import (
	"fmt"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// TestConsensusSafeUnderEveryCrashSubset injects every proper crash
// subset of a 4-process run (victims stop being scheduled after a seeded
// cutoff) and asserts that surviving processes always agree on a valid
// value. Wait-freedom means survivors must terminate no matter which
// subset crashes.
func TestConsensusSafeUnderEveryCrashSubset(t *testing.T) {
	const n = 4
	subsets := [][]int{
		{}, {0}, {1}, {2}, {3},
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3},
	}
	for _, victims := range subsets {
		victims := victims
		t.Run(fmt.Sprintf("crash %v", victims), func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				seed := uint64(trial*31 + len(victims))
				inner := sched.NewRandom(n, xrand.New(seed+1))
				var src sched.Source = inner
				if len(victims) > 0 {
					cutoff := 5 + trial*9
					src = sched.NewCrashSet(inner, victims, cutoff, seed+2)
				}
				c := NewRegister[int](n)
				inputs := distinct(n)
				outs, _ := runConsensus(t, c, inputs, src, seed+3)
				checkConsensus(t, inputs, outs, fmt.Sprintf("victims %v trial %d", victims, trial))
			}
		})
	}
}

// TestConsensusEarlyCrash crashes victims before they take a single
// step; the survivors must still decide.
func TestConsensusEarlyCrash(t *testing.T) {
	const n = 6
	inner := sched.NewRoundRobin(n)
	src := sched.NewCrashSet(inner, []int{0, 1, 2}, 0 /* immediate */, 7)
	c := NewSnapshot[int](n)
	inputs := distinct(n)
	outs, res := runConsensus(t, c, inputs, src, 9)
	checkConsensus(t, inputs, outs, "early crash")
	if len(outs) != 3 {
		t.Fatalf("%d survivors decided, want 3", len(outs))
	}
	for pid := 0; pid < 3; pid++ {
		if res.Steps[pid] != 0 {
			t.Fatalf("crashed process %d charged %d steps", pid, res.Steps[pid])
		}
	}
}

// TestCrashSetValidation ensures the all-crashed configuration is
// rejected up front instead of deadlocking a run.
func TestCrashSetValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty survivor set")
		}
	}()
	sched.NewCrashSet(sched.NewRoundRobin(2), []int{0, 1}, 3, 1)
}
