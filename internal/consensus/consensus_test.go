package consensus

import (
	"fmt"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/adoptcommit"
	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// runConsensus executes one Propose per process and returns outputs of
// finished processes.
func runConsensus[V comparable](t *testing.T, c *Protocol[V], inputs []V, src sched.Source, seed uint64) ([]V, sim.Result) {
	t.Helper()
	outs, finished, res, err := sim.Collect(src, sim.Config{AlgSeed: seed}, func(p *sim.Proc) V {
		return c.Propose(p, inputs[p.ID()])
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	var done []V
	for i, out := range outs {
		if finished[i] {
			done = append(done, out)
		}
	}
	return done, res
}

func checkConsensus[V comparable](t *testing.T, inputs, outputs []V, label string) {
	t.Helper()
	if len(outputs) == 0 {
		t.Fatalf("%s: no outputs", label)
	}
	set := make(map[V]bool, len(inputs))
	for _, v := range inputs {
		set[v] = true
	}
	for _, o := range outputs {
		if !set[o] {
			t.Fatalf("%s: validity violated: output %v", label, o)
		}
		if o != outputs[0] {
			t.Fatalf("%s: agreement violated: %v vs %v", label, o, outputs[0])
		}
	}
}

func distinct(n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	return in
}

type factory struct {
	name string
	mk   func(n int) *Protocol[int]
}

func factories() []factory {
	return []factory{
		{name: "snapshot", mk: NewSnapshot[int]},
		{name: "register", mk: NewRegister[int]},
		{name: "linear", mk: NewLinear[int]},
		{name: "cil-baseline", mk: NewCILBaseline[int]},
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing factories")
		}
	}()
	New[int](2, Config[int]{})
}

func TestConsensusAgreementAndValidityAllFactories(t *testing.T) {
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			rng := xrand.New(7)
			for trial := 0; trial < 30; trial++ {
				n := 2 + rng.Intn(20)
				c := f.mk(n)
				inputs := distinct(n)
				outs, _ := runConsensus(t, c, inputs, sched.NewRandom(n, xrand.New(rng.Uint64())), rng.Uint64())
				checkConsensus(t, inputs, outs, fmt.Sprintf("%s trial %d n=%d", f.name, trial, n))
			}
		})
	}
}

func TestConsensusAllSameInputOnePhase(t *testing.T) {
	// With identical inputs, the first adopt-commit must commit
	// immediately (conciliator validity + adopt-commit convergence).
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			const n = 8
			c := f.mk(n)
			inputs := make([]int, n)
			for i := range inputs {
				inputs[i] = 42
			}
			outs, _ := runConsensus(t, c, inputs, sched.NewRandom(n, xrand.New(3)), 5)
			checkConsensus(t, inputs, outs, f.name)
			if outs[0] != 42 {
				t.Fatalf("decided %d, want 42", outs[0])
			}
			if got := c.MaxPhases(); got != 1 {
				t.Fatalf("max phases %d, want 1", got)
			}
		})
	}
}

func TestConsensusExpectedPhasesSmall(t *testing.T) {
	// Expected phases is O(1); over many trials the mean should stay
	// tiny and the max modest.
	const n, trials = 16, 40
	rng := xrand.New(11)
	totalMean := 0.0
	worst := 0
	for trial := 0; trial < trials; trial++ {
		c := NewSnapshot[int](n)
		runConsensus(t, c, distinct(n), sched.NewRandom(n, xrand.New(rng.Uint64())), rng.Uint64())
		totalMean += c.MeanPhases()
		if m := c.MaxPhases(); m > worst {
			worst = m
		}
	}
	if avg := totalMean / trials; avg > 3 {
		t.Fatalf("average phases %v, want O(1) (about <= 3)", avg)
	}
	if worst > 10 {
		t.Fatalf("worst-case phases %d across %d trials", worst, trials)
	}
}

func TestConsensusAgreementUnderAllScheduleKinds(t *testing.T) {
	const n = 12
	inputs := distinct(n)
	for _, kind := range sched.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for _, f := range factories() {
				for trial := 0; trial < 5; trial++ {
					c := f.mk(n)
					outs, _ := runConsensus(t, c, inputs, sched.New(kind, n, uint64(100+trial)), uint64(trial))
					checkConsensus(t, inputs, outs, f.name+"/"+kind.String())
				}
			}
		})
	}
}

func TestConsensusAgreementWithCrashes(t *testing.T) {
	// Survivors must agree even when half the processes crash mid-run.
	rng := xrand.New(13)
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(12)
		c := NewRegister[int](n)
		inputs := distinct(n)
		outs, _ := runConsensus(t, c, inputs, sched.NewCrashHalf(n, xrand.New(rng.Uint64())), rng.Uint64())
		checkConsensus(t, inputs, outs, fmt.Sprintf("crash trial %d", trial))
	}
}

func TestConsensusBinaryInputs(t *testing.T) {
	rng := xrand.New(17)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(14)
		c := NewLinear[int](n)
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = rng.Intn(2)
		}
		outs, _ := runConsensus(t, c, inputs, sched.NewRandom(n, xrand.New(rng.Uint64())), rng.Uint64())
		checkConsensus(t, inputs, outs, fmt.Sprintf("binary trial %d", trial))
	}
}

func TestConsensusStringValues(t *testing.T) {
	const n = 6
	c := NewRegister[string](n)
	inputs := []string{"apple", "banana", "cherry", "date", "elder", "fig"}
	outs, _ := runConsensus(t, c, inputs, sched.NewRandom(n, xrand.New(19)), 23)
	checkConsensus(t, inputs, outs, "strings")
}

func TestConsensusDeterministicGivenSeeds(t *testing.T) {
	const n = 10
	run := func() []int {
		c := NewSnapshot[int](n)
		outs, _ := runConsensus(t, c, distinct(n), sched.NewRandom(n, xrand.New(29)), 31)
		return outs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outputs diverge: %v vs %v", a, b)
		}
	}
}

func TestConsensusConcurrentMode(t *testing.T) {
	const n = 16
	c := NewLinear[int](n)
	inputs := distinct(n)
	outs, _, err := sim.CollectConcurrent(n, sim.Config{AlgSeed: 37}, func(p *sim.Proc) int {
		return c.Propose(p, inputs[p.ID()])
	})
	if err != nil {
		t.Fatal(err)
	}
	checkConsensus(t, inputs, outs, "concurrent")
}

func TestConsensusIndividualStepsScaleSublinearly(t *testing.T) {
	// The headline result: expected individual steps grow like log* n
	// (snapshot) and log log n + AC (register), so doubling n repeatedly
	// should leave per-process steps nearly flat. Compare n=8 vs n=256:
	// allow generous noise but reject linear growth (32x).
	type case_ struct {
		name string
		mk   func(n int) *Protocol[int]
	}
	for _, tc := range []case_{{"snapshot", NewSnapshot[int]}, {"register", NewRegister[int]}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mean := func(n, trials int, seed uint64) float64 {
				rng := xrand.New(seed)
				var total int64
				var procs int64
				for trial := 0; trial < trials; trial++ {
					c := tc.mk(n)
					_, res := runConsensus(t, c, distinct(n), sched.NewRandom(n, xrand.New(rng.Uint64())), rng.Uint64())
					total += res.TotalSteps
					procs += int64(n)
				}
				return float64(total) / float64(procs)
			}
			small := mean(8, 10, 41)
			large := mean(256, 5, 43)
			if large > 6*small {
				t.Fatalf("per-process steps grew from %v (n=8) to %v (n=256); not sublinear", small, large)
			}
		})
	}
}

func TestMeanPhasesZeroBeforeUse(t *testing.T) {
	c := NewSnapshot[int](4)
	if c.MeanPhases() != 0 || c.MaxPhases() != 0 {
		t.Fatal("phase metrics nonzero before any propose")
	}
}

func TestCustomConfigPhaseFactoriesReceiveIndices(t *testing.T) {
	var phaseIdx []int
	const n = 4
	c := New(n, Config[int]{
		NewConciliator: func(k int) conciliator.Interface[int] {
			phaseIdx = append(phaseIdx, k)
			return conciliator.NewSifter[int](n, conciliator.SifterConfig{})
		},
		NewAdoptCommit: func(int) adoptcommit.Object[int] {
			return adoptcommit.NewSnapshotAC[int](n)
		},
	})
	outs, _ := runConsensus(t, c, distinct(n), sched.NewRandom(n, xrand.New(43)), 47)
	checkConsensus(t, distinct(n), outs, "custom")
	for i, k := range phaseIdx {
		if k != i {
			t.Fatalf("phase factory indices %v", phaseIdx)
		}
	}
}

func TestSafetyValveReturnsValidValue(t *testing.T) {
	// Force MaxPhases=1 with a conciliator that never agrees (distinct
	// outputs by construction: zero rounds sifter is impossible, so use a
	// custom conciliator that returns the input unchanged).
	const n = 4
	c := New(n, Config[int]{
		NewConciliator: func(int) conciliator.Interface[int] { return identityConciliator{} },
		NewAdoptCommit: func(int) adoptcommit.Object[int] { return adoptcommit.NewSnapshotAC[int](n) },
		MaxPhases:      1,
	})
	inputs := distinct(n)
	outs, finished, _, err := sim.Collect(sched.NewRandom(n, xrand.New(51)), sim.Config{AlgSeed: 53}, func(p *sim.Proc) int {
		return c.Propose(p, inputs[p.ID()])
	})
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[int]bool)
	for _, v := range inputs {
		set[v] = true
	}
	for i, o := range outs {
		if finished[i] && !set[o] {
			t.Fatalf("valve output %d not an input", o)
		}
	}
}

type identityConciliator struct{}

func (identityConciliator) Conciliate(p *sim.Proc, input int) int { p.Step(); return input }
func (identityConciliator) StepBound() int                        { return 1 }
