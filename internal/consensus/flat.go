package consensus

import (
	"fmt"

	"github.com/oblivious-consensus/conciliator/internal/adoptcommit"
	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// This file compiles the full conciliator + adopt-commit phase loop to a
// sim.FlatMachine: per-process phase cursors live in dense slices, each
// phase's conciliator is a flat machine from internal/conciliator, and
// each phase's adopt-commit object is a flat core from
// internal/adoptcommit. The observable-equivalence contract with the
// coroutine Protocol (EquivalentProtocol builds the matching one) is
// pinned by the cross-engine identity tests and FuzzFlatVsCoroutine:
// same slots, same per-process step counts, same decisions under every
// schedule and algorithm seed.

// Conciliator and adopt-commit selectors for FlatConfig.
const (
	ConcSifter      = "sifter"       // Algorithm 2 (register model)
	ConcSifterHalf  = "sifter-half"  // constant-p = 1/2 sifter baseline
	ConcPriorityMax = "priority-max" // Algorithm 1, footnote-1 max registers

	ACRegister = "register" // binary register adopt-commit (values {0, 1})
	ACSnapshot = "snapshot" // snapshot adopt-commit (any int64 values)
)

// FlatConfig selects the protocol assembled by NewFlat.
type FlatConfig struct {
	// Conciliator is one of ConcSifter, ConcSifterHalf, ConcPriorityMax.
	Conciliator string
	// AC is one of ACRegister, ACSnapshot. ACRegister restricts inputs
	// to {0, 1}.
	AC string
	// Epsilon is the per-phase conciliator failure bound (0 = 0.5, the
	// value the coroutine factories use).
	Epsilon float64
	// MaxPhases bounds the phase loop (0 = default 64), with the same
	// validity valve as the coroutine Protocol.
	MaxPhases int
}

func (cfg FlatConfig) withDefaults() FlatConfig {
	if cfg.Conciliator == "" {
		cfg.Conciliator = ConcSifter
	}
	if cfg.AC == "" {
		cfg.AC = ACRegister
	}
	if cfg.Epsilon <= 0 || cfg.Epsilon >= 1 {
		cfg.Epsilon = 0.5
	}
	if cfg.MaxPhases <= 0 {
		cfg.MaxPhases = defaultMaxPhases
	}
	return cfg
}

// sifterConfig resolves the conciliator.SifterConfig the coroutine
// factories would pass to NewSifter for this FlatConfig.
func (cfg FlatConfig) sifterConfig(n int) conciliator.SifterConfig {
	if cfg.Conciliator == ConcSifterHalf {
		return conciliator.HalfSifterConfig(n, cfg.Epsilon)
	}
	return conciliator.SifterConfig{Epsilon: cfg.Epsilon}
}

func (cfg FlatConfig) priorityConfig() conciliator.PriorityConfig {
	return conciliator.PriorityConfig{Epsilon: cfg.Epsilon, UseMaxRegisters: true}
}

const (
	concKindSifter = iota
	concKindPriorityMax
)

// FlatConsensus is the phase loop of Protocol.ProposeWithPhases compiled
// to a flat machine. Per-phase objects are created lazily the first time
// any process enters the phase (bookkeeping, no modeled steps, exactly
// like Protocol.phase) and are retained across Reset, so steady-state
// Monte Carlo trials run without allocation.
type FlatConsensus struct {
	n         int
	cfg       FlatConfig
	concKind  int8
	binary    bool
	maxPhases int

	// Per-process cursors.
	pref    []int64
	phase   []int32
	inConc  []bool
	acCur   []adoptcommit.FlatACCursor
	acVal   []int64
	decided []bool
	phases  []int32 // phases used by a decided process

	// Per-phase objects, indexed by phase, grown lazily.
	sifters []*conciliator.FlatSifter
	prios   []*conciliator.FlatPriorityMax
	regACs  []adoptcommit.FlatBinaryAC
	snapACs []*adoptcommit.FlatSnapshotAC

	inputs []int64
}

var _ sim.FlatMachine = (*FlatConsensus)(nil)

// NewFlat returns a flat consensus machine for n processes. Call Reset
// before each run.
func NewFlat(n int, cfg FlatConfig) (*FlatConsensus, error) {
	cfg = cfg.withDefaults()
	m := &FlatConsensus{
		n:         n,
		cfg:       cfg,
		maxPhases: cfg.MaxPhases,
		pref:      make([]int64, n),
		phase:     make([]int32, n),
		inConc:    make([]bool, n),
		acCur:     make([]adoptcommit.FlatACCursor, n),
		acVal:     make([]int64, n),
		decided:   make([]bool, n),
		phases:    make([]int32, n),
	}
	switch cfg.Conciliator {
	case ConcSifter, ConcSifterHalf:
		m.concKind = concKindSifter
	case ConcPriorityMax:
		m.concKind = concKindPriorityMax
	default:
		return nil, fmt.Errorf("consensus: unknown flat conciliator %q", cfg.Conciliator)
	}
	switch cfg.AC {
	case ACRegister:
		m.binary = true
	case ACSnapshot:
	default:
		return nil, fmt.Errorf("consensus: unknown flat adopt-commit %q", cfg.AC)
	}
	m.Reset(nil)
	return m, nil
}

// EquivalentProtocol builds the coroutine Protocol that NewFlat(n, cfg)
// reproduces byte-identically: the same factories the Corollary
// constructors use, specialised to int values.
func EquivalentProtocol(n int, cfg FlatConfig) (*Protocol[int], error) {
	cfg = cfg.withDefaults()
	var newConc func(int) conciliator.Interface[int]
	switch cfg.Conciliator {
	case ConcSifter, ConcSifterHalf:
		scfg := cfg.sifterConfig(n)
		newConc = func(int) conciliator.Interface[int] {
			return conciliator.NewSifter[int](n, scfg)
		}
	case ConcPriorityMax:
		pcfg := cfg.priorityConfig()
		newConc = func(int) conciliator.Interface[int] {
			return conciliator.NewPriority[int](n, pcfg)
		}
	default:
		return nil, fmt.Errorf("consensus: unknown flat conciliator %q", cfg.Conciliator)
	}
	var newAC func(int) adoptcommit.Object[int]
	switch cfg.AC {
	case ACRegister:
		newAC = func(int) adoptcommit.Object[int] { return adoptcommit.NewBinaryAC() }
	case ACSnapshot:
		newAC = func(int) adoptcommit.Object[int] { return adoptcommit.NewSnapshotAC[int](n) }
	default:
		return nil, fmt.Errorf("consensus: unknown flat adopt-commit %q", cfg.AC)
	}
	return New(n, Config[int]{
		NewConciliator: newConc,
		NewAdoptCommit: newAC,
		MaxPhases:      cfg.MaxPhases,
	}), nil
}

// Reset prepares the machine for a fresh run with the given inputs
// (inputs[pid]; nil means input = pid mod 2). The slice is read during
// Init and not retained past the run. With AC == ACRegister, inputs must
// lie in {0, 1}.
func (m *FlatConsensus) Reset(inputs []int64) {
	if inputs != nil && m.binary {
		for pid, v := range inputs {
			if v != 0 && v != 1 {
				panic(fmt.Sprintf("consensus: register adopt-commit requires binary inputs, got inputs[%d] = %d", pid, v))
			}
		}
	}
	m.inputs = inputs
	for pid := 0; pid < m.n; pid++ {
		m.phase[pid] = 0
		m.inConc[pid] = true
		m.acCur[pid] = adoptcommit.FlatACCursor{}
		m.decided[pid] = false
		m.phases[pid] = 0
	}
	for _, s := range m.sifters {
		s.Reset(m.pref)
	}
	for _, p := range m.prios {
		p.Reset(m.pref)
	}
	for i := range m.regACs {
		m.regACs[i].Reset()
	}
	for _, ac := range m.snapACs {
		ac.Reset()
	}
	m.enterPhase(0)
}

// enterPhase makes sure phase ph's conciliator and adopt-commit objects
// exist. Lazy creation mirrors Protocol.phase: bookkeeping only, no
// modeled steps.
func (m *FlatConsensus) enterPhase(ph int) {
	switch m.concKind {
	case concKindSifter:
		for len(m.sifters) <= ph {
			s := conciliator.NewFlatSifter(m.n, m.cfg.sifterConfig(m.n))
			s.Reset(m.pref)
			m.sifters = append(m.sifters, s)
		}
	case concKindPriorityMax:
		for len(m.prios) <= ph {
			p := conciliator.NewFlatPriorityMax(m.n, m.cfg.priorityConfig())
			p.Reset(m.pref)
			m.prios = append(m.prios, p)
		}
	}
	if m.binary {
		for len(m.regACs) <= ph {
			m.regACs = append(m.regACs, adoptcommit.FlatBinaryAC{})
		}
	} else {
		for len(m.snapACs) <= ph {
			m.snapACs = append(m.snapACs, adoptcommit.NewFlatSnapshotAC(m.n))
		}
	}
}

// Init implements sim.FlatMachine: record the input preference and draw
// the phase-0 persona, the only pre-first-step randomness of the
// coroutine body.
func (m *FlatConsensus) Init(pid int, rng *xrand.Rand) {
	v := int64(pid % 2)
	if m.inputs != nil {
		v = m.inputs[pid]
	}
	m.pref[pid] = v
	m.concInit(0, pid, rng)
}

// concInit draws process pid's phase-ph persona, reading pref[pid] as
// the conciliator input — the coroutine engine does this at the top of
// Conciliate, as local computation before the phase's first step.
func (m *FlatConsensus) concInit(ph, pid int, rng *xrand.Rand) {
	switch m.concKind {
	case concKindSifter:
		m.sifters[ph].Init(pid, rng)
	case concKindPriorityMax:
		m.prios[ph].Init(pid, rng)
	}
}

// Step implements sim.FlatMachine: exactly one shared-memory operation
// of the current phase's conciliator or adopt-commit object.
func (m *FlatConsensus) Step(pid int, rng *xrand.Rand) bool {
	ph := int(m.phase[pid])
	if m.inConc[pid] {
		var fin bool
		switch m.concKind {
		case concKindSifter:
			s := m.sifters[ph]
			if fin = s.Step(pid, rng); fin {
				m.acVal[pid] = s.Value(pid)
			}
		case concKindPriorityMax:
			p := m.prios[ph]
			if fin = p.Step(pid, rng); fin {
				m.acVal[pid] = p.Value(pid)
			}
		}
		if fin {
			m.inConc[pid] = false
			m.acCur[pid] = adoptcommit.FlatACCursor{}
		}
		// A conciliator's last operation is never the body's last: the
		// phase's adopt-commit Propose always follows.
		return false
	}

	var done, commit bool
	var out int64
	if m.binary {
		done, commit, out = m.regACs[ph].Step(&m.acCur[pid], m.acVal[pid])
	} else {
		done, commit, out = m.snapACs[ph].Step(&m.acCur[pid], pid, m.acVal[pid])
	}
	if !done {
		return false
	}
	m.pref[pid] = out
	if commit {
		m.decided[pid] = true
		m.phases[pid] = int32(ph + 1)
		return true
	}
	if ph+1 >= m.maxPhases {
		// Safety valve, exactly like ProposeWithPhases: return the
		// current preference, which is still some process's input.
		m.decided[pid] = true
		m.phases[pid] = int32(m.maxPhases)
		return true
	}
	m.phase[pid] = int32(ph + 1)
	m.inConc[pid] = true
	m.enterPhase(ph + 1)
	// Entering the next conciliator draws its persona now — local
	// computation between this operation and the process's next one,
	// at the same position in the per-process stream as the coroutine.
	m.concInit(ph+1, pid, rng)
	return false
}

// Output returns the decision of a finished process.
func (m *FlatConsensus) Output(pid int) int64 { return m.pref[pid] }

// Decided reports whether process pid reached a decision (true for every
// finished process).
func (m *FlatConsensus) Decided(pid int) bool { return m.decided[pid] }

// Phases returns how many phases a decided process executed.
func (m *FlatConsensus) Phases(pid int) int { return int(m.phases[pid]) }
