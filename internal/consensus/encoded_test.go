package consensus

import (
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/adoptcommit"
	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

func TestNewRegisterEncodedAgreement(t *testing.T) {
	const n = 12
	rng := xrand.New(3)
	for trial := 0; trial < 20; trial++ {
		// Binary universe: 1-bit encoder.
		c := NewRegisterEncoded(n, adoptcommit.IdentityEncoder(1))
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = rng.Intn(2)
		}
		outs, _ := runConsensus(t, c, inputs, sched.NewRandom(n, xrand.New(rng.Uint64())), rng.Uint64())
		checkConsensus(t, inputs, outs, "encoded binary")
	}
}

func TestNewRegisterEncodedCheaperThanHash(t *testing.T) {
	// With a 1-bit encoder the adopt-commit costs 5 steps instead of the
	// hash default's 131; total steps must reflect that.
	const n = 16
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i % 2
	}
	enc := NewRegisterEncoded(n, adoptcommit.IdentityEncoder(1))
	_, resEnc := runConsensus(t, enc, inputs, sched.NewRandom(n, xrand.New(5)), 7)

	hash := NewRegister[int](n)
	_, resHash := runConsensus(t, hash, inputs, sched.NewRandom(n, xrand.New(5)), 7)

	if resEnc.TotalSteps >= resHash.TotalSteps {
		t.Fatalf("encoded AC total %d not cheaper than hash AC total %d",
			resEnc.TotalSteps, resHash.TotalSteps)
	}
}

func TestNewRegisterEncodedWideUniverse(t *testing.T) {
	const n = 8
	c := NewRegisterEncoded(n, adoptcommit.IdentityEncoder(10))
	inputs := []int{100, 200, 300, 400, 500, 600, 700, 800}
	outs, _ := runConsensus(t, c, inputs, sched.NewRandom(n, xrand.New(9)), 11)
	checkConsensus(t, inputs, outs, "encoded wide")
}
