package consensus

import (
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/sched"
)

// TestMonteCarloDeterministicAcrossWorkers pins the central reproducibility
// claim of the Monte Carlo runner: per-trial seeds are pure functions of
// (Seed, trial), and worker-local histograms merge losslessly, so any
// Workers/ChunkSize combination yields the identical aggregate.
func TestMonteCarloDeterministicAcrossWorkers(t *testing.T) {
	base := MCConfig{
		N: 16, Trials: 400, Seed: 42, Sched: sched.KindRandom,
		Flat: FlatConfig{Conciliator: ConcSifter, AC: ACRegister},
	}
	var ref *MCResult
	for _, wc := range []struct{ workers, chunk int64 }{{1, 0}, {3, 37}, {8, 1}} {
		cfg := base
		cfg.Workers = int(wc.workers)
		cfg.ChunkSize = wc.chunk
		res, err := RunMonteCarlo(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", wc.workers, err)
		}
		if res.Agreed != res.Trials {
			t.Fatalf("workers=%d: agreement failed in %d of %d trials", wc.workers, res.Trials-res.Agreed, res.Trials)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.TotalSteps != ref.TotalSteps || res.TotalSlots != ref.TotalSlots {
			t.Fatalf("workers=%d chunk=%d: totals (%d,%d) != reference (%d,%d)",
				wc.workers, wc.chunk, res.TotalSteps, res.TotalSlots, ref.TotalSteps, ref.TotalSlots)
		}
		if res.Steps.N() != ref.Steps.N() || res.Steps.Sum() != ref.Steps.Sum() {
			t.Fatalf("workers=%d: step histogram drifted", wc.workers)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 1} {
			if res.Steps.Quantile(q) != ref.Steps.Quantile(q) ||
				res.MaxSteps.Quantile(q) != ref.MaxSteps.Quantile(q) ||
				res.Phases.Quantile(q) != ref.Phases.Quantile(q) {
				t.Fatalf("workers=%d q=%v: quantiles drifted", wc.workers, q)
			}
		}
	}
}

// TestMonteCarloMatchesDirectTrials pins the runner's per-trial wiring
// against directly driven flat runs with the same derived seeds.
func TestMonteCarloMatchesDirectTrials(t *testing.T) {
	cfg := MCConfig{
		N: 9, Trials: 50, Seed: 7, Sched: sched.KindRoundRobin,
		Flat:    FlatConfig{Conciliator: ConcPriorityMax, AC: ACSnapshot},
		Workers: 2,
	}
	res, err := RunMonteCarlo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewFlat(cfg.N, cfg.Flat)
	if err != nil {
		t.Fatal(err)
	}
	direct := newMCWorker(m)
	for trial := int64(0); trial < cfg.Trials; trial++ {
		if err := direct.runTrial(&cfg, trial); err != nil {
			t.Fatalf("direct trial %d: %v", trial, err)
		}
	}
	if direct.totalSteps != res.TotalSteps || direct.totalSlots != res.TotalSlots {
		t.Fatalf("direct totals (%d,%d) != runner (%d,%d)", direct.totalSteps, direct.totalSlots, res.TotalSteps, res.TotalSlots)
	}
	if direct.steps.Sum() != res.Steps.Sum() || direct.phases.Sum() != res.Phases.Sum() {
		t.Fatal("direct histograms drifted from runner aggregate")
	}
}

// TestMonteCarloRejectsBadConfig pins the validation paths.
func TestMonteCarloRejectsBadConfig(t *testing.T) {
	if _, err := RunMonteCarlo(MCConfig{N: 0, Trials: 1}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := RunMonteCarlo(MCConfig{N: 4, Trials: 0}); err == nil {
		t.Error("Trials=0 accepted")
	}
	if _, err := RunMonteCarlo(MCConfig{N: 4, Trials: 1, Flat: FlatConfig{Conciliator: "bogus"}}); err == nil {
		t.Error("bad flat config accepted")
	}
}
