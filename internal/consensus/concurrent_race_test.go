package consensus

import (
	"strconv"
	"testing"

	"github.com/oblivious-consensus/conciliator/internal/fault"
	"github.com/oblivious-consensus/conciliator/internal/sim"
)

// concurrentStress runs the protocol built by mk on real goroutines over
// the lock-free substrate, reusing one runner across trials, and feeds
// every outcome to the PR 4 safety monitors. The monitor is not
// thread-safe, so all checking happens post-run on the collected
// outputs — the concurrent analogue of the controlled fault experiments.
func concurrentStress(t *testing.T, n, trials int, mk func(n int) *Protocol[int]) {
	t.Helper()
	r := sim.NewConcurrentRunner(n, 0)
	defer r.Close()
	for trial := 0; trial < trials; trial++ {
		c := mk(n)
		inputs := make([]int, n)
		outs := make([]int, n)
		for i := range inputs {
			inputs[i] = (i+trial)%3 + 1
		}
		res, err := r.Run(func(p *sim.Proc) {
			outs[p.ID()] = c.Propose(p, inputs[p.ID()])
		}, sim.Config{AlgSeed: uint64(trial)*7919 + 1})
		if err != nil {
			t.Fatalf("n=%d trial %d: %v", n, trial, err)
		}
		mon := fault.NewMonitor()
		mon.CheckOutcome(inputs, outs, res.Finished)
		if vs := mon.Finish(); len(vs) != 0 {
			t.Fatalf("n=%d trial %d: safety violations: %v", n, trial, vs)
		}
	}
}

// TestConcurrentConsensusRace drives the full conciliator + adopt-commit
// stack under the lock-free concurrent substrate at several scales. Run
// with -race this is the memory-model smoke for the whole protocol
// stack: every CAS loop, snapshot scan, and max-register publish gets
// exercised by real interleavings rather than the controlled scheduler.
func TestConcurrentConsensusRace(t *testing.T) {
	protocols := []struct {
		name string
		mk   func(n int) *Protocol[int]
	}{
		{name: "snapshot", mk: NewSnapshot[int]},
		{name: "register", mk: NewRegister[int]},
		{name: "linear", mk: NewLinear[int]},
	}
	sizes := []struct {
		n      int
		trials int
	}{
		{n: 2, trials: 8},
		{n: 8, trials: 4},
		{n: 64, trials: 2},
	}
	for _, pr := range protocols {
		for _, sz := range sizes {
			pr, sz := pr, sz
			t.Run(pr.name+"/n="+strconv.Itoa(sz.n), func(t *testing.T) {
				if sz.n >= 64 && testing.Short() {
					t.Skip("large concurrent stress skipped in -short")
				}
				concurrentStress(t, sz.n, sz.trials, pr.mk)
			})
		}
	}
}

// TestConcurrentConsensusLockedSubstrate pins that the mutex-backed
// representation remains selectable for concurrent runs and still
// reaches agreement — the fallback path for platforms where the
// lock-free objects are suspect.
func TestConcurrentConsensusLockedSubstrate(t *testing.T) {
	const n = 8
	c := NewRegister[int](n)
	inputs := make([]int, n)
	outs := make([]int, n)
	for i := range inputs {
		inputs[i] = i % 2
	}
	res, err := sim.RunConcurrent(n, func(p *sim.Proc) {
		outs[p.ID()] = c.Propose(p, inputs[p.ID()])
	}, sim.Config{AlgSeed: 5, LockedMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	mon := fault.NewMonitor()
	mon.CheckOutcome(inputs, outs, res.Finished)
	if vs := mon.Finish(); len(vs) != 0 {
		t.Fatalf("safety violations on locked substrate: %v", vs)
	}
}
