// Package consensus composes conciliators with adopt-commit objects into
// full randomized consensus, following Section 1.2 of the paper (and [5]):
// an alternating sequence of conciliators and adopt-commit objects, where
// a process decides as soon as an adopt-commit returns commit.
//
// Agreement is absolute (not probabilistic): once some process commits v
// at phase i, coherence of that phase's adopt-commit hands v to every
// process that passes phase i, conciliator validity preserves it, and
// convergence commits it for everyone at phase i+1 at the latest.
// Termination is probabilistic with expected O(1) phases: each phase's
// conciliator produces agreement with probability at least delta
// independent of the oblivious adversary's schedule, so the number of
// phases is dominated by a geometric distribution.
//
// The three constructions of the paper are provided as factories:
//
//   - NewSnapshot: Algorithm 1 + snapshot adopt-commit (Corollary 1,
//     O(log* n) expected individual steps, unit-cost snapshot model).
//   - NewRegister: Algorithm 2 + register adopt-commit (Corollary 2,
//     O(log log n + AC(m)) expected individual steps, register model).
//   - NewLinear: Algorithm 3 + register adopt-commit (Corollary 3, same
//     individual steps with O(n) expected total steps).
//   - NewCILBaseline: pre-paper baseline, CIL conciliator + register
//     adopt-commit (Theta(n) expected individual steps).
package consensus

import (
	"sync"
	"sync/atomic"

	"github.com/oblivious-consensus/conciliator/internal/adoptcommit"
	"github.com/oblivious-consensus/conciliator/internal/conciliator"
	"github.com/oblivious-consensus/conciliator/internal/sim"
)

// defaultMaxPhases is the safety valve on the phase loop. Each phase
// fails to commit with probability at most 1/2 (conciliators are built
// with epsilon <= 1/2 and adopt-commit converges on agreement), so 64
// phases fail with probability about 2^-64.
const defaultMaxPhases = 64

// Config assembles a consensus protocol from per-phase object factories.
type Config[V comparable] struct {
	// NewConciliator builds the phase-i conciliator. Phases are created
	// lazily, at most once each.
	NewConciliator func(phase int) conciliator.Interface[V]

	// NewAdoptCommit builds the phase-i adopt-commit object.
	NewAdoptCommit func(phase int) adoptcommit.Object[V]

	// WrapAdoptCommit, when non-nil, wraps each phase's adopt-commit
	// object as it is created — e.g. adoptcommit.NewChecked, so safety
	// monitors observe every Propose without the protocol knowing.
	WrapAdoptCommit func(phase int, ac adoptcommit.Object[V]) adoptcommit.Object[V]

	// MaxPhases bounds the phase loop (0 = default 64). If the bound is
	// hit — probability about 2^-MaxPhases — the process returns its
	// current preference, preserving validity.
	MaxPhases int
}

// Protocol is a single-use consensus object for n processes: each process
// calls Propose exactly once.
type Protocol[V comparable] struct {
	n         int
	cfg       Config[V]
	maxPhases int

	mu     sync.Mutex
	phases []*phase[V]

	maxPhaseUsed atomic.Int64
	totalPhases  atomic.Int64
	proposers    atomic.Int64
}

type phase[V comparable] struct {
	conc conciliator.Interface[V]
	ac   adoptcommit.Object[V]
}

// New assembles a protocol from cfg.
func New[V comparable](n int, cfg Config[V]) *Protocol[V] {
	if cfg.NewConciliator == nil || cfg.NewAdoptCommit == nil {
		panic("consensus: Config requires both factories")
	}
	maxPhases := cfg.MaxPhases
	if maxPhases <= 0 {
		maxPhases = defaultMaxPhases
	}
	return &Protocol[V]{n: n, cfg: cfg, maxPhases: maxPhases}
}

// NewSnapshot returns the Corollary 1 protocol: Algorithm 1 conciliators
// alternating with snapshot adopt-commit objects, O(log* n) expected
// individual steps in the unit-cost snapshot model, for any number of
// possible input values.
func NewSnapshot[V comparable](n int) *Protocol[V] {
	return New(n, Config[V]{
		NewConciliator: func(int) conciliator.Interface[V] {
			return conciliator.NewPriority[V](n, conciliator.PriorityConfig{Epsilon: 0.5})
		},
		NewAdoptCommit: func(int) adoptcommit.Object[V] {
			return adoptcommit.NewSnapshotAC[V](n)
		},
	})
}

// NewRegister returns the Corollary 2 protocol: Algorithm 2 conciliators
// alternating with register adopt-commit objects in the multi-writer
// register model.
func NewRegister[V comparable](n int) *Protocol[V] {
	return New(n, Config[V]{
		NewConciliator: func(int) conciliator.Interface[V] {
			return conciliator.NewSifter[V](n, conciliator.SifterConfig{Epsilon: 0.5})
		},
		NewAdoptCommit: func(int) adoptcommit.Object[V] {
			return adoptcommit.NewHashAC[V]()
		},
	})
}

// NewLinear returns the Corollary 3 protocol: Algorithm 3 conciliators
// (CIL shell with embedded sifter) alternating with register adopt-commit
// objects, keeping O(log log n + AC) individual steps while reducing
// expected total steps to O(n).
func NewLinear[V comparable](n int) *Protocol[V] {
	return New(n, Config[V]{
		NewConciliator: func(int) conciliator.Interface[V] {
			return conciliator.NewEmbedded[V](n, conciliator.EmbeddedConfig{})
		},
		NewAdoptCommit: func(int) adoptcommit.Object[V] {
			return adoptcommit.NewHashAC[V]()
		},
	})
}

// NewRegisterEncoded is NewRegister with a caller-supplied value encoder
// for the adopt-commit conflict detectors. When the value universe is
// small and enumerable (m values in enc.Bits = ceil(log2 m) bits), this
// drops the adopt-commit cost from the 64-bit hash default (131 steps)
// to 2*enc.Bits + 3 — the m-dependence of Corollary 2.
func NewRegisterEncoded[V comparable](n int, enc adoptcommit.Encoder[V]) *Protocol[V] {
	return New(n, Config[V]{
		NewConciliator: func(int) conciliator.Interface[V] {
			return conciliator.NewSifter[V](n, conciliator.SifterConfig{Epsilon: 0.5})
		},
		NewAdoptCommit: func(int) adoptcommit.Object[V] {
			return adoptcommit.NewRegisterAC(adoptcommit.NewDigitCD(enc))
		},
	})
}

// NewCILBaseline returns the pre-paper baseline: plain Chor–Israeli–Li
// conciliators alternating with register adopt-commit objects. Expected
// individual steps are Theta(n).
func NewCILBaseline[V comparable](n int) *Protocol[V] {
	return New(n, Config[V]{
		NewConciliator: func(int) conciliator.Interface[V] {
			return conciliator.NewCIL[V](n, conciliator.CILConfig{})
		},
		NewAdoptCommit: func(int) adoptcommit.Object[V] {
			return adoptcommit.NewHashAC[V]()
		},
	})
}

// Propose runs consensus for process p with the given input and returns
// the decided value.
func (c *Protocol[V]) Propose(p *sim.Proc, input V) V {
	v, _ := c.ProposeWithPhases(p, input)
	return v
}

// ProposeWithPhases additionally reports how many phases the process
// executed before deciding.
func (c *Protocol[V]) ProposeWithPhases(p *sim.Proc, input V) (V, int) {
	pref := input
	for i := 0; i < c.maxPhases; i++ {
		ph := c.phase(i)
		v := ph.conc.Conciliate(p, pref)
		dec, w := ph.ac.Propose(p, p.ID(), v)
		if dec == adoptcommit.Commit {
			c.recordDecision(i + 1)
			return w, i + 1
		}
		pref = w
	}
	// Safety valve (probability about 2^-maxPhases): return the current
	// preference, which is still some process's input.
	c.recordDecision(c.maxPhases)
	return pref, c.maxPhases
}

func (c *Protocol[V]) recordDecision(phases int) {
	c.proposers.Add(1)
	c.totalPhases.Add(int64(phases))
	for {
		cur := c.maxPhaseUsed.Load()
		if int64(phases) <= cur || c.maxPhaseUsed.CompareAndSwap(cur, int64(phases)) {
			return
		}
	}
}

// MaxPhases returns the largest number of phases any decided process
// used.
func (c *Protocol[V]) MaxPhases() int { return int(c.maxPhaseUsed.Load()) }

// MeanPhases returns the average phases per decided process.
func (c *Protocol[V]) MeanPhases() float64 {
	n := c.proposers.Load()
	if n == 0 {
		return 0
	}
	return float64(c.totalPhases.Load()) / float64(n)
}

// phase returns the phase-i objects, creating them on first use. Lazy
// creation is bookkeeping, not a modeled shared-memory operation, so it
// takes no steps; the mutex makes it safe in concurrent mode.
func (c *Protocol[V]) phase(i int) *phase[V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.phases) <= i {
		k := len(c.phases)
		ac := c.cfg.NewAdoptCommit(k)
		if c.cfg.WrapAdoptCommit != nil {
			ac = c.cfg.WrapAdoptCommit(k, ac)
		}
		c.phases = append(c.phases, &phase[V]{
			conc: c.cfg.NewConciliator(k),
			ac:   ac,
		})
	}
	return c.phases[i]
}
