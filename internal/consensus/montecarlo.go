package consensus

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oblivious-consensus/conciliator/internal/sched"
	"github.com/oblivious-consensus/conciliator/internal/sim"
	"github.com/oblivious-consensus/conciliator/internal/stats"
	"github.com/oblivious-consensus/conciliator/internal/xrand"
)

// MCConfig configures a Monte Carlo sweep of flat-engine consensus
// trials.
type MCConfig struct {
	// N is the number of processes per trial.
	N int
	// Trials is the number of independent trials.
	Trials int64
	// Flat selects the protocol.
	Flat FlatConfig
	// Sched is the schedule family driving every trial.
	Sched sched.Kind
	// Seed derives each trial's schedule seed and algorithm seed by a
	// pure function of (Seed, trial index): results are byte-identical
	// for any worker count or chunk size.
	Seed uint64
	// Workers is the worker-goroutine count (0 = GOMAXPROCS).
	Workers int
	// ChunkSize is the number of trials a worker claims at a time
	// (0 = 256).
	ChunkSize int64
}

// MCResult aggregates a Monte Carlo sweep. All histograms are exact:
// merging worker-local shards loses nothing, unlike subsampled or
// bucketed summaries.
type MCResult struct {
	Trials int64
	N      int

	// Agreed counts trials whose finished processes all decided the same
	// value (every trial should agree; disagreement would falsify the
	// protocol, not the statistics).
	Agreed int64

	// Steps is the per-process individual step distribution
	// (N observations per trial).
	Steps *stats.IntHist
	// MaxSteps is the per-trial maximum individual step count.
	MaxSteps *stats.IntHist
	// Phases is the per-process phases-to-decide distribution.
	Phases *stats.IntHist

	TotalSteps int64
	TotalSlots int64

	Elapsed     time.Duration
	StepsPerSec float64
}

// trialSeeds derives trial t's (algorithm seed, schedule seed) as a pure
// function of (base, t), independent of which worker runs the trial.
func trialSeeds(base, t uint64) (algSeed, schedSeed uint64) {
	var root, tr xrand.Rand
	root.Reseed(base)
	root.ForkNamedInto(t, &tr)
	return tr.Uint64(), tr.Uint64()
}

// mcWorker is one worker's reusable trial state.
type mcWorker struct {
	machine *FlatConsensus
	runner  *sim.FlatRunner[*FlatConsensus]
	res     sim.Result

	agreed     int64
	totalSteps int64
	totalSlots int64
	steps      *stats.IntHist
	maxSteps   *stats.IntHist
	phases     *stats.IntHist
}

func newMCWorker(m *FlatConsensus) *mcWorker {
	return &mcWorker{
		machine:  m,
		runner:   sim.NewFlatRunner[*FlatConsensus](),
		steps:    stats.NewIntHist(1024),
		maxSteps: stats.NewIntHist(1024),
		phases:   stats.NewIntHist(64),
	}
}

func (w *mcWorker) runTrial(cfg *MCConfig, t int64) error {
	algSeed, schedSeed := trialSeeds(cfg.Seed, uint64(t))
	src := sched.New(cfg.Sched, cfg.N, schedSeed)
	w.machine.Reset(nil)
	if err := w.runner.RunInto(src, w.machine, sim.Config{AlgSeed: algSeed}, &w.res); err != nil {
		return fmt.Errorf("trial %d: %w", t, err)
	}
	w.totalSteps += w.res.TotalSteps
	w.totalSlots += w.res.Slots
	var maxSteps int64
	agreed := true
	var first int64
	haveFirst := false
	for pid := 0; pid < cfg.N; pid++ {
		if s := w.res.Steps[pid]; s > maxSteps {
			maxSteps = s
		}
		if !w.res.Finished[pid] {
			continue
		}
		w.steps.Add(w.res.Steps[pid])
		w.phases.Add(int64(w.machine.Phases(pid)))
		if v := w.machine.Output(pid); !haveFirst {
			first, haveFirst = v, true
		} else if v != first {
			agreed = false
		}
	}
	w.maxSteps.Add(maxSteps)
	if agreed {
		w.agreed++
	}
	return nil
}

// RunMonteCarlo runs cfg.Trials independent flat-engine consensus trials
// across chunked workers with worker-local streaming aggregation: the
// hot loop reuses one machine, one runner, and one Result per worker, so
// steady-state trials do not allocate. The aggregate is byte-identical
// for any Workers/ChunkSize setting.
func RunMonteCarlo(cfg MCConfig) (*MCResult, error) {
	if cfg.N < 1 || cfg.Trials < 1 {
		return nil, fmt.Errorf("consensus: Monte Carlo needs N >= 1 and Trials >= 1, got N=%d Trials=%d", cfg.N, cfg.Trials)
	}
	if _, err := NewFlat(cfg.N, cfg.Flat); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if int64(workers) > cfg.Trials {
		workers = int(cfg.Trials)
	}
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		chunk = 256
	}

	start := time.Now()
	var nextChunk atomic.Int64
	var firstErr atomic.Value
	ws := make([]*mcWorker, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		m, err := NewFlat(cfg.N, cfg.Flat)
		if err != nil {
			return nil, err
		}
		w := newMCWorker(m)
		ws[wi] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for firstErr.Load() == nil {
				lo := nextChunk.Add(chunk) - chunk
				if lo >= cfg.Trials {
					return
				}
				hi := lo + chunk
				if hi > cfg.Trials {
					hi = cfg.Trials
				}
				for t := lo; t < hi; t++ {
					if err := w.runTrial(&cfg, t); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return nil, err
	}

	out := &MCResult{
		Trials:   cfg.Trials,
		N:        cfg.N,
		Steps:    stats.NewIntHist(1024),
		MaxSteps: stats.NewIntHist(1024),
		Phases:   stats.NewIntHist(64),
		Elapsed:  time.Since(start),
	}
	for _, w := range ws {
		out.Agreed += w.agreed
		out.TotalSteps += w.totalSteps
		out.TotalSlots += w.totalSlots
		out.Steps.Merge(w.steps)
		out.MaxSteps.Merge(w.maxSteps)
		out.Phases.Merge(w.phases)
	}
	if secs := out.Elapsed.Seconds(); secs > 0 {
		out.StepsPerSec = float64(out.TotalSteps) / secs
	}
	return out, nil
}
